#include "mptcp/connection.hpp"

#include <algorithm>

#include "mptcp/path_health.hpp"
#include "mptcp/skb_pool.hpp"

namespace progmp::mptcp {

MptcpConnection::MptcpConnection(sim::Simulator& sim, Config cfg, Rng rng)
    : sim_(sim), cfg_(std::move(cfg)), rng_(rng), trace_(cfg_.trace_capacity) {
  PROGMP_CHECK(!cfg_.subflows.empty());
  PROGMP_CHECK(cfg_.num_registers > 0 && cfg_.num_registers <= 64);
  registers_.assign(static_cast<std::size_t>(cfg_.num_registers), 0);

  // The fallback machine needs the receiver's detection path: arming the
  // connection knob implies DSS-checksum validation + mapping-loss reports.
  if (cfg_.middlebox_fallback) cfg_.receiver.dss_checksum = true;

  trace_.set_enabled(cfg_.trace_enabled);
  trace_.set_conn_id(cfg_.conn_id);
  metrics_.set_conn_id(cfg_.conn_id);
  hist_insns_per_exec_ = metrics_.histogram("engine.insns_per_exec");
  hist_execs_per_trigger_ = metrics_.histogram("engine.execs_per_trigger");
  hist_pushes_per_exec_ = metrics_.histogram("engine.pushes_per_exec");

  receiver_ = std::make_unique<Receiver>(sim_, cfg_.receiver);
  receiver_->set_tracer(&trace_);
  rwnd_ = receiver_->rwnd_bytes();
  receiver_->set_deliver_fn([this](std::uint64_t meta_seq, std::int32_t size) {
    delivered_bytes_ += size;
    if (on_deliver_) on_deliver_(meta_seq, size, sim_.now());
  });
  receiver_->set_window_update_fn(
      [this](std::int64_t wnd_stamp, std::uint64_t /*meta_ack*/,
             std::int64_t rwnd) { deliver_window_update(wnd_stamp, rwnd); });
  receiver_->set_mapping_failure_fn(
      [this](int slot, std::uint64_t meta_seq, MappingFailure cause) {
        on_mapping_failure(slot, meta_seq, cause);
      });

  // Long-lived scheduler context over the queue bundle; reset() re-arms it
  // per execution so the hot trigger path reuses the log capacity.
  sched_ctx_.emplace(sim_.now(), Trigger{}, std::span<const SubflowInfo>{},
                     &queues_, registers_.data(), cfg_.num_registers,
                     std::int64_t{0}, &sched_stats_, &trace_);

  if (cfg_.cc == CcKind::kLia) {
    lia_group_ = std::make_shared<tcp::LiaCoupling>();
  }
  for (const SubflowSpec& spec : cfg_.subflows) {
    create_subflow(spec);
  }
  if (cfg_.probe_revival || cfg_.keepalive_idle > TimeNs{0}) {
    ensure_path_health();
  }
  if (cfg_.stall_timeout > TimeNs{0}) arm_watchdog();
}

MptcpConnection::~MptcpConnection() = default;

void MptcpConnection::ensure_path_health() {
  if (health_ != nullptr) return;
  health_ = std::make_unique<PathHealthMonitor>(sim_, *this);
  for (int s = 0; s < subflow_count(); ++s) health_->on_subflow_attached(s);
}

std::unique_ptr<tcp::CongestionControl> MptcpConnection::make_cc() {
  switch (cfg_.cc) {
    case CcKind::kLia:
      return std::make_unique<tcp::LiaCc>(lia_group_);
    case CcKind::kCubic:
      return std::make_unique<tcp::CubicCc>();
    case CcKind::kReno:
      break;
  }
  return std::make_unique<tcp::RenoCc>();
}

int MptcpConnection::create_subflow(const SubflowSpec& spec) {
  const int slot = static_cast<int>(subflows_.size());
  PROGMP_CHECK_MSG(slot < kMaxSubflows, "too many subflows");
  link_down_epoch_.push_back(0);
  restore_amnesty_.push_back(false);
  // A restore of the *data* link revives a failed subflow (the injector
  // restores the ACK link first for whole-path blackouts, so both directions
  // are usable by the time this fires). revive_subflow() is a no-op unless
  // the subflow actually failed, so fault-free runs never take this path.
  if (spec.path_id.empty()) {
    // Private link pair, owned by the connection — the original behaviour.
    owned_paths_.push_back(std::make_unique<sim::NetPath>(
        sim_, spec.forward, spec.reverse, rng_.fork()));
    sim::NetPath& p = *owned_paths_.back();
    paths_.push_back(&p);
    p.forward.set_tracer(&trace_, slot, /*direction=*/0);
    p.reverse.set_tracer(&trace_, slot, /*direction=*/1);
    p.forward.set_state_change_fn(
        [this, slot](bool up) { on_path_state(slot, up); });
  } else {
    // Shared path: the network owns links, tracer attachment and RNG; this
    // connection only observes state transitions. The observer is guarded by
    // the connection's lifetime token because shared links may outlive it.
    PROGMP_CHECK_MSG(cfg_.network != nullptr,
                     "SubflowSpec.path_id requires Config::network");
    sim::NetPath& p = cfg_.network->path(spec.path_id);
    paths_.push_back(&p);
    std::weak_ptr<int> guard{alive_};
    p.forward.add_state_observer([this, guard, slot](bool up) {
      if (guard.expired()) return;
      on_path_state(slot, up);
    });
  }
  SubflowSender::Host host;
  host.may_transmit = [this](const SkbPtr& skb) {
    // TCP window check on the right edge: offsets below it always fit.
    return skb->byte_offset + static_cast<std::uint64_t>(skb->size) <=
           meta_una_bytes_ + static_cast<std::uint64_t>(rwnd_);
  };
  host.on_transmitted = [this](const SkbPtr& skb) {
    right_edge_bytes_ =
        std::max(right_edge_bytes_,
                 skb->byte_offset + static_cast<std::uint64_t>(skb->size));
    if (!skb->in_qu && !skb->acked && !skb->dropped) {
      queues_.qu.push_back(skb);  // sets in_qu; byte aggregate follows
    }
  };
  host.on_ack_done = [this](int s) {
    // A successful ACK proves the path works post-restore; a later death is
    // then a genuine black-path death, not the tail of a healed outage.
    restore_amnesty_[static_cast<std::size_t>(s)] = false;
    if (cfg_.receiver.autotune) {
      // Feed the DRS epoch clock the smallest smoothed RTT across the
      // established subflows — the receive buffer must cover the *fastest*
      // path's delivery rate, and the hint only changes on real samples.
      TimeNs best{0};
      for (const auto& sbf : subflows_) {
        if (!sbf->established() || !sbf->rtt().has_sample()) continue;
        if (best <= TimeNs{0} || sbf->rtt().srtt() < best) {
          best = sbf->rtt().srtt();
        }
      }
      if (best > TimeNs{0}) receiver_->set_rtt_hint(best);
    }
    trigger({TriggerKind::kAck, s});
  };
  host.on_loss_suspected = [this](int s, const SkbPtr& skb) {
    handle_loss_suspected(s, skb);
  };
  host.on_meta_ack = [this](std::uint64_t meta_ack, std::int64_t rwnd,
                            std::int64_t wnd_stamp) {
    handle_meta_ack(meta_ack, rwnd, wnd_stamp);
  };
  host.on_tsq_freed = [this](int s) { trigger({TriggerKind::kTsqFreed, s}); };
  host.on_window_blocked = [this](int, std::vector<SkbPtr> blocked) {
    // The receive window regressed under packets already scheduled onto the
    // subflow: return them to the front of the meta sending queue (order
    // preserved) so they are rescheduled when the window reopens instead of
    // squatting on the subflow's cwnd headroom. Packets that meanwhile
    // gained another owner (acked, dropped, re-entered Q or RQ, e.g. a
    // redundant copy) are simply released.
    for (auto it = blocked.rbegin(); it != blocked.rend(); ++it) {
      const SkbPtr& skb = *it;
      if (skb->acked || skb->dropped || skb->in_q || skb->in_rq) continue;
      queues_.q.push_front(skb);
    }
  };
  host.on_ack_tampered = [this](int s) {
    ++ack_tampered_acks_;
    enter_fallback(s, MappingFailure::kAckStripped);
  };
  host.on_subflow_dead = [this](int s) {
    fail_subflow(s);
    // RTO backoff can place the fatal consecutive RTO *after* the link
    // already came back up (short blackouts). No further up-transition will
    // arrive in that case, so a death whose RTO spiral straddled a restore
    // must arm its own revival check or the subflow stays dead forever.
    // The amnesty is one-shot per restore: a congestion death on a link
    // that never went down (or that already ACKed since the restore) keeps
    // the stay-dead-until-restore semantics, as do manual fail_subflow()
    // calls — otherwise an up-but-black path would churn die/revive and
    // starve the backup-subflow failover. With probe_revival the monitor
    // owns revival: fail_subflow() above already started probing the (up)
    // path, which subsumes the amnesty with an actual end-to-end proof.
    if (!cfg_.probe_revival && cfg_.revive_on_restore &&
        restore_amnesty_[static_cast<std::size_t>(s)] &&
        path(s).forward.is_up()) {
      restore_amnesty_[static_cast<std::size_t>(s)] = false;
      schedule_revival_check(s, std::max(cfg_.revival_min_uptime, TimeNs{0}));
    }
  };

  SubflowSender::Config sender_cfg = spec.sender;
  if (sender_cfg.rto_death_threshold == 0) {
    sender_cfg.rto_death_threshold = cfg_.rto_death_threshold;
  }
  subflows_.push_back(std::make_unique<SubflowSender>(
      sim_, *paths_.back(), *receiver_, slot, std::move(sender_cfg), make_cc(),
      std::move(host)));
  subflows_.back()->set_tracer(&trace_);
  return slot;
}

void MptcpConnection::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
}

namespace {

/// Stand-in installed while the real program is quarantined: the built-in
/// default scheduler behind the regular Scheduler interface.
class QuarantineStandIn final : public Scheduler {
 public:
  void schedule(SchedulerContext& ctx) override { run_default_minrtt(ctx); }
  [[nodiscard]] std::string name() const override { return "default"; }
};

}  // namespace

void MptcpConnection::quarantine_scheduler() {
  if (scheduler_ == nullptr || quarantined_original_ != nullptr) return;
  quarantined_original_ = std::move(scheduler_);
  scheduler_ = std::make_unique<QuarantineStandIn>();
}

void MptcpConnection::reinstate_scheduler() {
  if (quarantined_original_ == nullptr) return;
  scheduler_ = std::move(quarantined_original_);
}

void MptcpConnection::write(std::int64_t bytes, const SkbProps& props) {
  PROGMP_CHECK_MSG(scheduler_ != nullptr, "no scheduler installed");
  PROGMP_CHECK(bytes > 0);
  const std::int64_t mss =
      subflows_.front()->config().mss;  // uniform across subflows
  std::int64_t remaining = bytes;
  while (remaining > 0) {
    const auto size = static_cast<std::int32_t>(std::min(remaining, mss));
    remaining -= size;
    auto skb = make_skb();
    skb->meta_seq = next_meta_seq_++;
    skb->byte_offset = next_byte_offset_;
    next_byte_offset_ += static_cast<std::uint64_t>(size);
    skb->size = size;
    skb->dss_csum = dss_checksum(skb->meta_seq, size);
    skb->props = props;
    // Only the last packet of the burst carries the application's
    // end-of-flow signal.
    skb->props.flow_end = props.flow_end && remaining == 0;
    skb->queued_at = sim_.now();
    queues_.q.push_back(skb);
    unacked_.emplace(skb->meta_seq, skb);
  }
  written_bytes_ += bytes;
  trigger({TriggerKind::kDataPushed, -1});
}

void MptcpConnection::set_register(int idx, std::int64_t value) {
  PROGMP_CHECK(idx >= 0 && idx < cfg_.num_registers);
  registers_[static_cast<std::size_t>(idx)] = value;
  trigger({TriggerKind::kRegisterSet, -1});
}

std::int64_t MptcpConnection::get_register(int idx) const {
  PROGMP_CHECK(idx >= 0 && idx < cfg_.num_registers);
  return registers_[static_cast<std::size_t>(idx)];
}

int MptcpConnection::add_subflow(const SubflowSpec& spec) {
  if (fallback_state_ == FallbackState::kSinglePath) {
    // Pinned to single-path operation: the path manager must not grow the
    // subflow set back — the middlebox that forced the fallback is still out
    // there. Counted no-op; the caller sees the refusal as slot -1.
    ++fallback_rejected_joins_;
    return -1;
  }
  const int slot = create_subflow(spec);
  if (health_ != nullptr) health_->on_subflow_attached(slot);
  trigger({TriggerKind::kSubflowAdded, slot});
  return slot;
}

void MptcpConnection::reinject_orphans(const std::vector<SkbPtr>& orphans) {
  for (const SkbPtr& skb : orphans) {
    // Unsent/unacked packets of the dead subflow become reinjection
    // candidates unless they are still waiting in Q anyway.
    if (!skb->in_q && !skb->in_rq) {
      queues_.rq.push_back(skb);
    }
  }
}

void MptcpConnection::close_subflow(int slot) {
  PROGMP_CHECK(slot >= 0 && slot < subflow_count());
  reinject_orphans(subflows_[static_cast<std::size_t>(slot)]->close());
  // A probe chain armed while this subflow was the carrier must not keep
  // ticking against the dead slot; the next engine drain re-arms it on the
  // survivors if the connection is still window-blocked.
  cancel_persist_chain();
  if (health_ != nullptr) health_->on_subflow_closed(slot);
  trigger({TriggerKind::kSubflowClosed, slot});
}

void MptcpConnection::fail_subflow(int slot) {
  PROGMP_CHECK(slot >= 0 && slot < subflow_count());
  SubflowSender& sbf = *subflows_[static_cast<std::size_t>(slot)];
  if (sbf.state() != SubflowSender::State::kEstablished) return;
  std::vector<SkbPtr> orphans = sbf.fail();
  // The dead subflow's sent-on marks are stale: whatever was on its wire is
  // gone, and after a revival the subflow starts from a fresh sequence
  // space. Clearing them lets schedulers with a !SENT_ON(sbf) reinjection
  // filter place the stranded packets (including on this subflow once it is
  // revived) instead of wedging.
  for (const SkbPtr& skb : orphans) {
    skb->sent_mask &= ~(1u << static_cast<unsigned>(slot));
    // The meta queues cache the mask in their entries; re-sync them.
    queues_.refresh_sent_mask(skb.get());
  }
  // The deliberately-broken build for the chaos-soak self-test: dropping the
  // harvest strands the orphans in QU with no owner, which the
  // no-stranded-packets invariant must flag.
  if (!test_drop_failed_subflow_orphans_) reinject_orphans(orphans);
  cancel_persist_chain();
  if (health_ != nullptr) health_->on_subflow_failed(slot);
  // The scheduler sees the shrunken subflow set (established == false drops
  // the slot from SUBFLOWS) and reschedules the stranded packets on the
  // survivors — including backup subflows, per the default backup semantics.
  trigger({TriggerKind::kSubflowClosed, slot});
}

void MptcpConnection::on_path_state(int slot, bool up) {
  if (!up) {
    // Any pending hysteresis revival for this slot is now stale, and so is
    // any pending death amnesty — the coming restore re-arms it.
    ++link_down_epoch_[static_cast<std::size_t>(slot)];
    restore_amnesty_[static_cast<std::size_t>(slot)] = false;
    return;
  }
  if (cfg_.probe_revival) {
    // With probing enabled the up-transition is a hint, not proof: it resets
    // the probe schedule (an immediate probe), and revival happens only once
    // the monitor collected probe_required_acks sane echoes. The death
    // amnesty is subsumed for the same reason — a post-restore death starts
    // probing, which carries its own revival path.
    if (health_ != nullptr) health_->on_link_restored(slot);
    return;
  }
  if (!cfg_.revive_on_restore) return;
  if (subflows_[static_cast<std::size_t>(slot)]->state() ==
      SubflowSender::State::kEstablished) {
    // The subflow survived the outage so far, but its RTO spiral may still
    // declare it dead after this restore — arm the one-shot death amnesty.
    restore_amnesty_[static_cast<std::size_t>(slot)] = true;
  }
  if (cfg_.revival_min_uptime <= TimeNs{0}) {
    // Seed behaviour: trust the first up-transition.
    revive_subflow(slot);
    return;
  }
  // Hysteresis for flapping paths: re-admit the subflow only once the link
  // stayed up for the whole probe window. A down-transition inside the
  // window bumps the epoch and the check below abandons the revival; the
  // next (stable) restore schedules a fresh one.
  schedule_revival_check(slot, cfg_.revival_min_uptime);
}

void MptcpConnection::schedule_revival_check(int slot, TimeNs delay) {
  const std::uint32_t epoch = link_down_epoch_[static_cast<std::size_t>(slot)];
  std::weak_ptr<int> guard{alive_};
  sim_.schedule_after(delay, [this, guard, slot, epoch] {
    if (guard.expired()) return;
    if (link_down_epoch_[static_cast<std::size_t>(slot)] != epoch) return;
    if (!path(slot).forward.is_up()) return;
    if (cfg_.revive_on_restore) revive_subflow(slot);
  });
}

void MptcpConnection::revive_subflow(int slot, bool probe_proven) {
  PROGMP_CHECK(slot >= 0 && slot < subflow_count());
  SubflowSender& sbf = *subflows_[static_cast<std::size_t>(slot)];
  if (!sbf.can_revive()) return;
  // Both ends restart the subflow sequence space together.
  receiver_->reset_subflow(slot);
  sbf.reopen();
  trace_.emit(TraceEventType::kSubflowRevived, sim_.now(), slot,
              probe_proven ? 1 : 0);
  if (health_ != nullptr) health_->on_subflow_revived(slot);
  trigger({TriggerKind::kSubflowAdded, slot});
}

void MptcpConnection::set_rto_death_threshold(int threshold) {
  cfg_.rto_death_threshold = threshold;
  for (auto& sbf : subflows_) sbf->set_rto_death_threshold(threshold);
}

void MptcpConnection::set_probe_revival(bool on) {
  const bool was = cfg_.probe_revival;
  cfg_.probe_revival = on;
  if (on && !was) {
    ensure_path_health();
    // Subflows that failed before the switch start being probed right away
    // (ensure_path_health covers them only when it created the monitor now).
    for (int s = 0; s < subflow_count(); ++s) {
      if (subflows_[static_cast<std::size_t>(s)]->state() ==
          SubflowSender::State::kFailed) {
        health_->on_subflow_failed(s);
      }
    }
  } else if (!on && was && health_ != nullptr) {
    health_->stop_all_probing();
  }
}

void MptcpConnection::set_keepalive(TimeNs idle, int misses) {
  cfg_.keepalive_idle = idle;
  cfg_.keepalive_misses = misses;
  if (idle > TimeNs{0}) ensure_path_health();
  // Re-arm (or, with idle<=0, cancel) the keepalive timers under the new
  // config — the pending timers carry the old cadence.
  if (health_ != nullptr) health_->refresh_keepalives();
}

void MptcpConnection::deliver_window_update(std::int64_t wnd_stamp,
                                            std::int64_t rwnd) {
  const int slot = cfg_.window_update_subflow;
  if (slot >= 0 && slot < subflow_count()) {
    // Routed: the update rides the subflow's real reverse link as a pure
    // ACK — it queues behind other ACKs, pays serialization and delay, and
    // dies in blackouts, drops or a full queue like anything on the wire.
    ++wnd_updates_routed_;
    std::weak_ptr<int> guard{alive_};
    paths_[static_cast<std::size_t>(slot)]->reverse.send(
        SubflowSender::kAckBytes, nullptr, [this, guard, wnd_stamp, rwnd] {
          if (guard.expired()) return;
          ++wnd_updates_delivered_;
          apply_window_update(wnd_stamp, rwnd);
        });
    return;
  }
  // Seed side channel: a window update travels back like an ACK; model it
  // with the first subflow's reverse-path delay, immune to loss.
  const TimeNs delay = paths_.empty() ? TimeNs{0}
                                      : paths_.front()->reverse.config().delay;
  std::weak_ptr<int> guard{alive_};
  sim_.schedule_after(delay, [this, guard, wnd_stamp, rwnd] {
    if (guard.expired()) return;
    apply_window_update(wnd_stamp, rwnd);
  });
}

void MptcpConnection::apply_window_update(std::int64_t wnd_stamp,
                                          std::int64_t rwnd) {
  apply_window(wnd_stamp, rwnd);
  for (auto& sbf : subflows_) sbf->pump();
  trigger({TriggerKind::kWindowUpdate, -1});
}

void MptcpConnection::apply_window(std::int64_t wnd_stamp, std::int64_t rwnd) {
  // RFC 9293 §3.10.7.4 window-update guard (the WL1/WL2 rule), keyed on
  // the receiver's emission-order stamp: only a strictly newer
  // advertisement may replace the window view. ACKs and window updates
  // race each other across paths; on asymmetric delays a slow subflow's
  // ACK carries a fresher cumulative ack but an *older* window snapshot
  // than the updates it raced, and letting it win either overruns the
  // receiver's promise or wedges the sender on a long-reopened window.
  // peek_ack() echoes reuse the latest stamp; between stamps the window
  // only grows (app reads), so at an equal stamp the max is the newest.
  if (wnd_stamp > wnd_stamp_) {
    wnd_stamp_ = wnd_stamp;
    rwnd_ = rwnd;
  } else if (wnd_stamp == wnd_stamp_) {
    rwnd_ = std::max(rwnd_, rwnd);
  }
}

void MptcpConnection::set_zero_window_probe(bool on) {
  cfg_.zero_window_probe = on;
  if (on) {
    maybe_arm_persist();
  } else if (persist_armed_) {
    persist_armed_ = false;
    persist_backoff_ = 1;
    ++persist_epoch_;  // cancels the pending probe chain
  }
}

bool MptcpConnection::rwnd_blocked() const {
  bool any_established = false;
  std::int64_t in_flight = 0;
  bool pending = !queues_.q.empty();
  for (const auto& sbf : subflows_) {
    if (sbf->established()) any_established = true;
    in_flight += sbf->in_flight();
    pending = pending || sbf->queued() > 0;
  }
  // With data in flight the ACK clock (or the RTO) still runs — the persist
  // timer only covers the state where no other timer will ever fire.
  if (!any_established || !pending || in_flight > 0) return false;
  // Free window for the next packet. Reinjections sit below the transmitted
  // right edge and always fit, so RQ alone never counts as window-blocked.
  const std::int64_t claimed =
      static_cast<std::int64_t>(right_edge_bytes_ - meta_una_bytes_);
  const std::int64_t need =
      queues_.q.empty() ? subflows_.front()->config().mss
                        : queues_.q.front()->size;
  return rwnd_ - claimed < need;
}

void MptcpConnection::maybe_arm_persist() {
  if (!cfg_.zero_window_probe) return;
  if (!rwnd_blocked()) {
    if (persist_armed_) {
      // The window opened (or the data drained): cancel the probe chain.
      persist_armed_ = false;
      persist_backoff_ = 1;
      ++persist_epoch_;
    }
    return;
  }
  if (persist_armed_) return;
  persist_armed_ = true;
  persist_backoff_ = 1;
  schedule_persist_probe(persist_epoch_);
  // §3.4's rwnd-limited signal, raised once per blocked episode: schedulers
  // (e.g. opportunistic retransmission) get to react to the block.
  trigger({TriggerKind::kRwndLimited, -1});
}

void MptcpConnection::schedule_persist_probe(std::uint64_t epoch) {
  TimeNs delay{cfg_.persist_interval.ns() * persist_backoff_};
  if (delay > cfg_.persist_interval_max) delay = cfg_.persist_interval_max;
  std::weak_ptr<int> guard{alive_};
  sim_.schedule_after(delay, [this, guard, epoch] {
    if (guard.expired()) return;
    if (epoch != persist_epoch_) return;  // chain was cancelled
    if (!rwnd_blocked()) {
      persist_armed_ = false;
      persist_backoff_ = 1;
      ++persist_epoch_;
      return;
    }
    // Probe on the first established subflow; with none alive keep the
    // chain ticking — a revival re-establishes a carrier for the probe.
    for (int s = 0; s < subflow_count(); ++s) {
      if (subflows_[static_cast<std::size_t>(s)]->established()) {
        send_zero_window_probe(s);
        break;
      }
    }
    persist_backoff_ = std::min(persist_backoff_ * 2, 1 << 16);
    schedule_persist_probe(epoch);
  });
}

void MptcpConnection::send_zero_window_probe(int slot) {
  ++zero_window_probes_;
  const std::int64_t claimed =
      static_cast<std::int64_t>(right_edge_bytes_ - meta_una_bytes_);
  trace_.emit(TraceEventType::kZeroWindowProbe, sim_.now(), slot,
              persist_backoff_, std::max<std::int64_t>(0, rwnd_ - claimed));
  // A header-only segment below the window edge; the peer answers with a
  // pure ACK carrying its live window (RFC 9293 §3.8.6.1). Both legs ride
  // the real links, so a blacked-out path eats probes until it heals.
  sim::NetPath* path = paths_[static_cast<std::size_t>(slot)];
  const std::int64_t header =
      subflows_[static_cast<std::size_t>(slot)]->config().header_bytes;
  std::weak_ptr<int> guard{alive_};
  path->forward.send(header, nullptr, [this, guard, slot, path] {
    if (guard.expired()) return;
    const AckInfo ack = receiver_->peek_ack(slot);
    path->reverse.send(SubflowSender::kAckBytes, nullptr, [this, guard, ack] {
      if (guard.expired()) return;
      handle_meta_ack(ack.meta_ack, ack.rwnd_bytes, ack.wnd_stamp);
      for (auto& sbf : subflows_) sbf->pump();
      trigger({TriggerKind::kWindowUpdate, -1});
    });
  });
}

void MptcpConnection::set_stall_timeout(TimeNs timeout) {
  cfg_.stall_timeout = timeout;
  // Disabling (timeout<=0) is handled by the next poll, which observes the
  // config and stops itself.
  if (timeout > TimeNs{0}) arm_watchdog();
}

void MptcpConnection::arm_watchdog() {
  wd_last_delivered_ = delivered_bytes_;
  wd_last_progress_at_ = sim_.now();
  if (watchdog_armed_) return;
  watchdog_armed_ = true;
  schedule_watchdog_poll();
}

void MptcpConnection::schedule_watchdog_poll() {
  // Poll at half the stall timeout so a stall is declared at most one poll
  // period late; floor of 1 ms keeps tiny timeouts from flooding the sim.
  const TimeNs period =
      std::max(TimeNs{cfg_.stall_timeout.ns() / 2}, milliseconds(1));
  std::weak_ptr<int> guard{alive_};
  sim_.schedule_after(period, [this, guard] {
    if (guard.expired()) return;
    watchdog_poll();
  });
}

void MptcpConnection::watchdog_poll() {
  if (cfg_.stall_timeout <= TimeNs{0}) {
    watchdog_armed_ = false;  // disabled live: stop polling
    return;
  }
  const TimeNs now = sim_.now();
  if (delivered_bytes_ != wd_last_delivered_) {
    wd_last_delivered_ = delivered_bytes_;
    wd_last_progress_at_ = now;
  } else if (now - wd_last_progress_at_ >= cfg_.stall_timeout) {
    bool any_established = false;
    for (const auto& sbf : subflows_) {
      if (sbf->established()) {
        any_established = true;
        break;
      }
    }
    const bool outstanding = !queues_.q.empty() || !queues_.qu.empty() ||
                             !queues_.rq.empty();
    if (outstanding && any_established && rwnd_ > 0) {
      // A genuine meta-level stall: data is waiting, a subflow could carry
      // it and the peer's window is open — yet nothing was delivered for a
      // whole stall_timeout. An app-limited idle connection (all queues
      // empty) never reaches here.
      bool rescued = false;
      if (cfg_.stall_rescue) {
        // Force-reinject the oldest in-flight packet no queue holds — the
        // packet most likely wedged on a path that silently ate it. The
        // reinjection-first rule of every scheduler retransmits it on the
        // next available subflow.
        for (const PacketQueue::Entry& e : queues_.qu) {
          const SkbPtr& skb = e.skb;
          if (skb->acked || skb->dropped || skb->in_rq || skb->in_q) continue;
          queues_.rq.push_back(skb);
          ++stall_rescues_;
          rescued = true;
          break;
        }
      }
      ++stalls_;
      trace_.emit(TraceEventType::kConnStall, now, -1, rescued ? 1 : 0,
                  delivered_bytes_,
                  static_cast<std::int64_t>(queues_.q.size() +
                                            queues_.qu.size() +
                                            queues_.rq.size()));
      trigger({TriggerKind::kConnStall, -1});
    }
    // Rate limit to one declaration per stall_timeout by resetting the
    // progress clock even when the stall conditions did not hold.
    wd_last_progress_at_ = now;
  }
  schedule_watchdog_poll();
}

std::int64_t MptcpConnection::wire_bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& sbf : subflows_) total += sbf->stats().bytes_sent;
  return total;
}

void MptcpConnection::trigger(Trigger t) {
  if (scheduler_ == nullptr) return;
  pending_.push_back(t);
  if (in_engine_) return;  // will be drained by the active engine loop
  run_engine();
}

void MptcpConnection::run_engine() {
  in_engine_ = true;
  while (!pending_.empty()) {
    const Trigger t = pending_.front();
    pending_.pop_front();
    // Push-until-blocked: a productive execution is re-run until the
    // scheduler stops acting (the kernel keeps calling the scheduler until
    // it stops pushing). Schedulers like Compensating act even with Q
    // empty, so progress alone decides. The execution bound applies to
    // *this* trigger's continuations only — triggers queued behind it are
    // genuine external events and must still run.
    int executions = 0;
    bool progress = true;
    while (progress && executions < cfg_.max_executions_per_trigger) {
      ++executions;
      progress = run_scheduler_once(t);
    }
    hist_execs_per_trigger_->add(executions);
    if (progress) {
      // Bound hit with the scheduler still acting: abandon only the
      // re-posted continuation of this trigger.
      ++sched_stats_.trigger_drops;
      trace_.emit(TraceEventType::kTriggerDropped, sim_.now(), t.subflow_slot,
                  static_cast<std::int32_t>(t.kind), executions);
    }
  }
  in_engine_ = false;
  // Every engine drain is a state boundary where the sender may have just
  // become (or stopped being) rwnd-blocked — keep the persist timer in sync.
  maybe_arm_persist();
}

bool MptcpConnection::run_scheduler_once(Trigger t) {
  infos_.clear();
  infos_.reserve(subflows_.size());
  const TimeNs now = sim_.now();
  for (const auto& sbf : subflows_) infos_.push_back(sbf->info(now));

  // Free window for *new* data: advertised window minus the span already
  // claimed by the transmitted right edge. The context is long-lived
  // (capacity of the action/log vectors survives across executions);
  // reset() re-arms it for this execution.
  const std::int64_t claimed =
      static_cast<std::int64_t>(right_edge_bytes_ - meta_una_bytes_);
  SchedulerContext& ctx = *sched_ctx_;
  ctx.reset(now, t, infos_, std::max<std::int64_t>(0, rwnd_ - claimed),
            cfg_.middlebox_fallback ? right_edge_bytes_ : 0);
  ctx.set_env_signals({mem_pressure_level_, receiver_->dsack_dup_segments(),
                       static_cast<std::int64_t>(fallback_state_),
                       quarantine_signal_});
  ++sched_stats_.executions;
  trace_.emit(TraceEventType::kSchedExecStart, now, t.subflow_slot,
              static_cast<std::int32_t>(t.kind));
  scheduler_->schedule(ctx);
  last_exec_backend_ = ctx.exec_backend();
  if (ctx.faulted()) {
    // Runtime fault containment (§3.3): the faulting execution's visible
    // effects are rolled back and — unless disabled — the built-in default
    // scheduler handles this trigger, so a buggy program degrades service
    // instead of stalling the connection.
    const FaultKind kind = ctx.fault_kind();
    ++sched_stats_.sched_faults;
    ++fault_counts_[static_cast<std::size_t>(kind)];
    trace_.emit(TraceEventType::kSchedFault, now, t.subflow_slot,
                static_cast<std::int32_t>(t.kind),
                static_cast<std::int64_t>(kind));
    ctx.rollback();
    if (cfg_.sched_fault_fallback) {
      run_default_minrtt(ctx);
      last_exec_backend_ = "fallback";
    }
    // The observer runs last: it may quarantine (swap out) the scheduler,
    // which must not happen while this execution still references it.
    if (fault_observer_) fault_observer_(kind, t.kind);
  }
  hist_insns_per_exec_->add(ctx.exec_insns());
  hist_pushes_per_exec_->add(static_cast<std::int64_t>(ctx.actions().size()));
  trace_.emit(TraceEventType::kSchedExecEnd, now, t.subflow_slot,
              static_cast<std::int32_t>(t.kind),
              static_cast<std::int64_t>(ctx.actions().size()),
              ctx.exec_insns());
  apply_actions(ctx);
  return ctx.performed_action();
}

void MptcpConnection::apply_actions(const SchedulerContext& ctx) {
  for (const SchedulerContext::PushAction& action : ctx.actions()) {
    const SkbPtr& skb = action.skb;
    if (skb == nullptr || skb->acked || skb->dropped) continue;
    auto& sbf = *subflows_[static_cast<std::size_t>(action.subflow_slot)];
    if (!sbf.established()) continue;  // subflow vanished: graceful no-op
    skb->mark_sent_on(action.subflow_slot, sim_.now());
    queues_.refresh_sent_mask(skb.get());
    sbf.enqueue(skb);
  }
}

void MptcpConnection::handle_meta_ack(std::uint64_t meta_ack,
                                      std::int64_t rwnd,
                                      std::int64_t wnd_stamp) {
  apply_window(wnd_stamp, rwnd);
  while (meta_una_ < meta_ack) {
    auto it = unacked_.find(meta_una_);
    if (it != unacked_.end()) {
      const SkbPtr skb = it->second;
      skb->acked = true;
      meta_una_bytes_ = skb->byte_offset + static_cast<std::uint64_t>(skb->size);
      detach_everywhere(skb);
      unacked_.erase(it);
    }
    ++meta_una_;
  }
}

void MptcpConnection::handle_loss_suspected(int slot, const SkbPtr& skb) {
  if (skb->acked || skb->dropped || skb->in_rq || skb->in_q) return;
  queues_.rq.push_back(skb);
  trigger({TriggerKind::kReinject, slot});
}

void MptcpConnection::on_mapping_failure(int slot, std::uint64_t meta_seq,
                                         MappingFailure cause) {
  // The segment never reached the meta layer: the receiver refused it, so no
  // meta ACK will ever cover it from this transmission. Requeue it at the
  // front of the meta sending queue — NOT the reinjection queue: specs
  // without a reinjection clause (opportunistic_redundant only ever pops Q)
  // must still carry the packet after the fallback below pins the survivor.
  auto it = unacked_.find(meta_seq);
  if (it != unacked_.end()) {
    const SkbPtr& skb = it->second;
    if (!skb->acked && !skb->dropped && !skb->in_rq && !skb->in_q) {
      queues_.q.push_front(skb);
      trigger({TriggerKind::kDataPushed, slot});
    }
  }
  enter_fallback(slot, cause);
}

void MptcpConnection::enter_fallback(int bad_slot, MappingFailure cause) {
  if (!cfg_.middlebox_fallback) return;
  // One-shot: a connection falls back at most once, and the pending guard
  // also stops re-entry while the abandon loop below runs (closing a subflow
  // can surface further mapping failures synchronously).
  if (fallback_state_ != FallbackState::kNative) return;

  // Elect the survivor among the *other* established subflows: prefer
  // non-backup, then lowest smoothed RTT, then lowest slot (deterministic).
  int survivor = -1;
  for (int s = 0; s < subflow_count(); ++s) {
    if (s == bad_slot) continue;
    const SubflowSender& sbf = *subflows_[static_cast<std::size_t>(s)];
    if (!sbf.established()) continue;
    if (survivor < 0) {
      survivor = s;
      continue;
    }
    const SubflowSender& best = *subflows_[static_cast<std::size_t>(survivor)];
    if (sbf.config().backup != best.config().backup) {
      if (!sbf.config().backup) survivor = s;
      continue;
    }
    if (sbf.rtt().srtt() < best.rtt().srtt()) survivor = s;
  }
  // RFC 8684 §3.7: with no clean subflow left, fall back to regular TCP on
  // the tampered path itself — mapping-less delivery beats no delivery.
  if (survivor < 0) survivor = bad_slot;

  fallback_state_ = FallbackState::kFallbackPending;
  fallback_survivor_ = survivor;
  trace_.emit(TraceEventType::kFallback, sim_.now(), bad_slot,
              static_cast<std::int32_t>(FallbackState::kFallbackPending),
              survivor, static_cast<std::int64_t>(cause));
  for (int s = 0; s < subflow_count(); ++s) {
    if (s != survivor) abandon_subflow(s);
  }
  fallback_state_ = FallbackState::kSinglePath;
  ++fallbacks_;
  trace_.emit(TraceEventType::kFallback, sim_.now(), survivor,
              static_cast<std::int32_t>(FallbackState::kSinglePath), survivor,
              static_cast<std::int64_t>(cause));
  trigger({TriggerKind::kFallback, survivor});
}

void MptcpConnection::abandon_subflow(int slot) {
  SubflowSender& sbf = *subflows_[static_cast<std::size_t>(slot)];
  if (sbf.state() == SubflowSender::State::kClosed) return;
  // close() harvests from every non-closed state (established or failed) and
  // lands in kClosed, which can_revive() refuses — abandoned subflows never
  // come back, unlike failed ones.
  std::vector<SkbPtr> orphans = sbf.close();
  for (const SkbPtr& skb : orphans) {
    // Same stale-mark scrub as fail_subflow: whatever was on the abandoned
    // wire is gone, and !SENT_ON reinjection filters must see the packets as
    // placeable on the survivor.
    skb->sent_mask &= ~(1u << static_cast<unsigned>(slot));
    queues_.refresh_sent_mask(skb.get());
  }
  // Unlike a path death — where the stranded data is a *suspected loss* and
  // goes through RQ's reinjection-first rule — fallback re-owns the data at
  // the meta level: return it to the front of the sending queue in order,
  // exactly like the window-blocked requeue. Schedulers with no reinjection
  // clause (opportunistic_redundant only ever pops Q) would strand an RQ
  // harvest forever and wedge the post-fallback stream.
  for (auto it = orphans.rbegin(); it != orphans.rend(); ++it) {
    const SkbPtr& skb = *it;
    if (skb->acked || skb->dropped || skb->in_q || skb->in_rq) continue;
    queues_.q.push_front(skb);
  }
  cancel_persist_chain();
  if (health_ != nullptr) health_->on_subflow_closed(slot);
  trigger({TriggerKind::kSubflowClosed, slot});
}

void MptcpConnection::cancel_persist_chain() {
  if (!persist_armed_) return;
  persist_armed_ = false;
  persist_backoff_ = 1;
  ++persist_epoch_;  // orphans the scheduled probe callback
}

void MptcpConnection::set_recv_buf_grant(std::int64_t bytes, bool shed) {
  const std::int64_t old = receiver_->recv_buf_limit();
  if (bytes == old) return;
  receiver_->set_recv_buf_limit(bytes);
  if (shed) {
    trace_.emit(TraceEventType::kMemShed, sim_.now(), -1,
                bytes < old ? 1 : 0, old, bytes);
  }
  // The sender's window view shrinks on the next advertisement; growth is
  // worth announcing now, exactly like an app-read drain reopening space.
  if (bytes > old) receiver_->announce_window();
}

void MptcpConnection::signal_mem_pressure(std::int64_t level) {
  mem_pressure_level_ = level;
  trace_.emit(TraceEventType::kMemPressure, sim_.now(), -1,
              static_cast<std::int32_t>(level));
  trigger({TriggerKind::kMemPressure, -1});
}

void MptcpConnection::refresh_metrics() {
  // Engine counters mirror SchedulerStats exactly — the registry is the
  // exported view, SchedulerStats stays the authoritative one.
  *metrics_.counter("engine.executions") = sched_stats_.executions;
  *metrics_.counter("engine.pushes") = sched_stats_.pushes;
  *metrics_.counter("engine.redundant_pushes") = sched_stats_.redundant_pushes;
  *metrics_.counter("engine.null_pushes") = sched_stats_.null_pushes;
  *metrics_.counter("engine.pops") = sched_stats_.pops;
  *metrics_.counter("engine.drops") = sched_stats_.drops;
  *metrics_.counter("engine.trigger_drops") = sched_stats_.trigger_drops;
  *metrics_.counter("engine.sched_faults") = sched_stats_.sched_faults;
  for (std::size_t k = 1; k < fault_counts_.size(); ++k) {
    if (fault_counts_[k] == 0) continue;  // keep fault-free dumps unchanged
    *metrics_.counter(std::string("engine.sched_faults.") +
                      fault_kind_name(static_cast<FaultKind>(k))) =
        fault_counts_[k];
  }

  *metrics_.counter("conn.written_bytes") = written_bytes_;
  *metrics_.counter("conn.delivered_bytes") = delivered_bytes_;
  *metrics_.counter("conn.wire_bytes_sent") = wire_bytes_sent();
  *metrics_.gauge("conn.q_len") = static_cast<std::int64_t>(queues_.q.size());
  *metrics_.gauge("conn.qu_len") = static_cast<std::int64_t>(queues_.qu.size());
  *metrics_.gauge("conn.rq_len") = static_cast<std::int64_t>(queues_.rq.size());
  *metrics_.gauge("conn.qu_bytes") = queues_.qu.bytes();
  *metrics_.gauge("conn.rwnd_bytes") = rwnd_;

  *metrics_.counter("trace.emitted") =
      static_cast<std::int64_t>(trace_.total_emitted());
  *metrics_.counter("trace.overwritten") =
      static_cast<std::int64_t>(trace_.overwritten());

  *metrics_.counter("conn.stalls") = stalls_;
  *metrics_.counter("conn.stall_rescues") = stall_rescues_;
  *metrics_.counter("conn.zero_window_probes") = zero_window_probes_;
  *metrics_.counter("conn.wnd_updates_routed") = wnd_updates_routed_;
  *metrics_.counter("conn.wnd_updates_delivered") = wnd_updates_delivered_;
  *metrics_.counter("recv.buf_drops") = receiver_->recv_buf_drops();
  *metrics_.counter("recv.window_updates_emitted") =
      receiver_->window_updates_emitted();
  *metrics_.counter("recv.window_updates_coalesced") =
      receiver_->window_updates_coalesced();
  *metrics_.gauge("recv.unread_bytes") = receiver_->unread_bytes();
  *metrics_.gauge("recv.ooo_bytes") = receiver_->ooo_bytes();
  *metrics_.counter("recv.dup_segs") = receiver_->duplicate_segments();
  *metrics_.counter("recv.network_dups") = receiver_->network_dup_segments();
  *metrics_.counter("recv.dsack_dups") = receiver_->dsack_dup_segments();
  *metrics_.gauge("recv.buf_target") = receiver_->recv_buf_target();
  *metrics_.gauge("recv.buf_limit") = receiver_->recv_buf_limit();
  *metrics_.counter("recv.autotune_grows") = receiver_->autotune_grows();
  *metrics_.counter("recv.autotune_shrinks") = receiver_->autotune_shrinks();
  *metrics_.gauge("conn.mem_pressure") = mem_pressure_level_;

  *metrics_.counter("conn.fallbacks") = fallbacks_;
  *metrics_.gauge("conn.fallback_state") =
      static_cast<std::int64_t>(fallback_state_);
  *metrics_.counter("conn.ack_tampered_acks") = ack_tampered_acks_;
  *metrics_.counter("conn.fallback_rejected_joins") = fallback_rejected_joins_;
  *metrics_.counter("recv.mapping_lost") = receiver_->mapping_lost_segments();
  *metrics_.counter("recv.csum_fails") = receiver_->csum_fail_segments();
  *metrics_.counter("recv.corrupt_delivered_bytes") =
      receiver_->corrupt_delivered_bytes();
  std::int64_t tamper_stripped = 0;
  std::int64_t tamper_corrupted = 0;
  for (const sim::NetPath* path : paths_) {
    tamper_stripped += path->forward.stats().tampered_stripped +
                       path->reverse.stats().tampered_stripped;
    tamper_corrupted += path->forward.stats().tampered_corrupted +
                        path->reverse.stats().tampered_corrupted;
  }
  *metrics_.counter("link.tamper.stripped") = tamper_stripped;
  *metrics_.counter("link.tamper.corrupted") = tamper_corrupted;

  if (health_ != nullptr) health_->refresh_metrics(metrics_);

  const TimeNs now = sim_.now();
  for (const auto& sbf : subflows_) {
    const std::string p = "sbf" + std::to_string(sbf->slot()) + ".";
    const SubflowSender::Stats& s = sbf->stats();
    *metrics_.counter(p + "segments_sent") = s.segments_sent;
    *metrics_.counter(p + "segments_retransmitted") = s.segments_retransmitted;
    *metrics_.counter(p + "bytes_sent") = s.bytes_sent;
    *metrics_.counter(p + "fast_retransmits") = s.fast_retransmits;
    *metrics_.counter(p + "rtos") = s.rtos;
    *metrics_.counter(p + "deaths") = s.deaths;
    *metrics_.counter(p + "revivals") = s.revivals;
    *metrics_.gauge(p + "established") = sbf->established() ? 1 : 0;
    const sim::Link::Stats& fwd =
        paths_[static_cast<std::size_t>(sbf->slot())]->forward.stats();
    *metrics_.counter(p + "link_drops_down") = fwd.drops_down;
    *metrics_.counter(p + "link_drops_burst") = fwd.drops_burst;
    *metrics_.counter(p + "link_down_transitions") = fwd.down_transitions;
    const sim::Link::Stats& rev =
        paths_[static_cast<std::size_t>(sbf->slot())]->reverse.stats();
    *metrics_.counter(p + "link_tamper_stripped") =
        fwd.tampered_stripped + rev.tampered_stripped;
    *metrics_.counter(p + "link_tamper_corrupted") =
        fwd.tampered_corrupted + rev.tampered_corrupted;
    const SubflowInfo info = sbf->info(now);
    *metrics_.gauge(p + "cwnd") = info.cwnd;
    *metrics_.gauge(p + "in_flight") = info.skbs_in_flight;
    *metrics_.gauge(p + "queued") = info.queued;
    *metrics_.gauge(p + "rtt_us") = info.rtt.us();
  }
}

void MptcpConnection::detach_everywhere(const SkbPtr& skb) {
  // The intrusive membership index makes each meta-queue removal O(1).
  queues_.detach(skb.get());
  for (auto& sbf : subflows_) sbf->purge_acked(skb);
}

}  // namespace progmp::mptcp
