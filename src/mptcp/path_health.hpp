// Active path-health probing (the "kernel re-probes" gap from ROADMAP).
//
// Two probing duties, both built from the same zero-payload keepalive probe
// (a bare 60-byte header on the forward link, echoed as a pure ACK on the
// reverse link):
//
//  * Revival probing — a *failed* subflow is probed on an exponential
//    schedule (probe_interval doubling up to probe_interval_max). Revival
//    eligibility requires `probe_required_acks` consecutive probe echoes
//    with sane RTT samples; a link up-transition no longer revives by
//    itself, it merely resets the schedule and probes immediately. This is
//    the end-to-end proof the up-transition cannot give: the link observer
//    only sees the local segment, a probe echo proves the whole round trip.
//  * Idle keepalives — an *established* subflow with nothing queued or in
//    flight is probed every `keepalive_idle`; `keepalive_misses` consecutive
//    unanswered keepalives declare the subflow dead long before an RTO
//    backoff spiral would (an idle subflow has no RTO pending at all, so a
//    silent blackout is otherwise discovered only when the scheduler next
//    uses the path — typically at handover time, the worst moment).
//
// Everything is epoch/chain-guarded against state transitions: `epoch`
// invalidates probe echoes still in flight when the slot changes state,
// `chain` invalidates pending probe timers when the schedule is restarted.
// The monitor exists only when Config::probe_revival or keepalive_idle is
// set, so default runs carry no extra events, RNG draws or trace output —
// the seed bit-identity contract.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/time.hpp"
#include "mptcp/skb.hpp"
#include "sim/simulator.hpp"

namespace progmp {
class MetricsRegistry;
}

namespace progmp::mptcp {

class MptcpConnection;

class PathHealthMonitor {
 public:
  struct SlotStats {
    std::int64_t probes_sent = 0;       ///< revival probes on failed subflows
    std::int64_t keepalives_sent = 0;   ///< idle keepalives on established ones
    std::int64_t probe_acks = 0;        ///< echoes received (either kind)
    std::int64_t insane_acks = 0;       ///< echoes whose RTT failed the sanity gate
    std::int64_t probe_revivals = 0;    ///< revivals proven by probing
    std::int64_t keepalive_deaths = 0;  ///< deaths declared by missed keepalives
    TimeNs last_probe_rtt{0};
  };

  PathHealthMonitor(sim::Simulator& sim, MptcpConnection& conn);

  // ---- Lifecycle notifications from the connection ------------------------
  /// A subflow slot exists (construction or add_subflow). Starts keepalives
  /// if the subflow is established, or revival probing if it is already
  /// failed (live enabling of probe_revival).
  void on_subflow_attached(int slot);
  void on_subflow_failed(int slot);
  void on_subflow_revived(int slot);
  void on_subflow_closed(int slot);
  /// Forward-link up-transition while the subflow is failed: reset the
  /// exponential schedule and probe now — the restore is a hint, not proof.
  void on_link_restored(int slot);

  // ---- Live reconfiguration ----------------------------------------------
  /// probe_revival switched off: abandon every active probing schedule.
  void stop_all_probing();
  /// keepalive_idle/misses changed: re-arm keepalive timers on established
  /// subflows under the new cadence (or cancel them when disabled).
  void refresh_keepalives();

  [[nodiscard]] bool probing(int slot) const {
    return slots_[static_cast<std::size_t>(slot)].probing;
  }
  [[nodiscard]] const SlotStats& stats(int slot) const {
    return slots_[static_cast<std::size_t>(slot)].slot_stats;
  }

  void refresh_metrics(MetricsRegistry& m) const;
  /// Per-slot "path_health:" lines for the proc dump.
  [[nodiscard]] std::string proc_dump() const;

  /// Wire size of a probe: one bare header, zero payload.
  static constexpr std::int64_t kProbeWireBytes = 60;

 private:
  struct Slot {
    bool attached = false;
    bool probing = false;
    std::uint32_t epoch = 0;   ///< invalidates in-flight probe echoes
    std::uint64_t chain = 0;   ///< invalidates pending probe/keepalive timers
    TimeNs interval{0};        ///< current revival-probe spacing
    int sane_streak = 0;       ///< consecutive sane echoes toward revival
    bool keepalive_outstanding = false;
    int keepalive_miss_streak = 0;
    TimeNs last_probe_ack_at{0};
    /// Path base RTT captured at attach time, while the path was known-good.
    /// The sanity ceiling must not track a later-degraded link config, or a
    /// crawling path would raise its own bar and re-admit itself.
    TimeNs baseline_rtt{0};
    SlotStats slot_stats;
  };

  [[nodiscard]] Slot& slot(int s) {
    return slots_[static_cast<std::size_t>(s)];
  }
  void start_probing(int s);
  void stop_probing(int s);
  /// Restarts the exponential schedule at probe_interval with an immediate
  /// first probe (link restore, or a sane echo accelerating the proof).
  void restart_schedule_now(int s);
  void schedule_probe(int s, TimeNs delay);
  void send_probe(int s, bool keepalive);
  void on_probe_ack(int s, std::uint32_t epoch, TimeNs sent_at, bool keepalive);
  void start_keepalive(int s);
  void keepalive_tick(int s);
  void schedule_keepalive(int s);
  /// RTT sanity ceiling for probe echoes: a probe that took longer than
  /// max(4 x base RTT, 200 ms) proves the path exists but not that it is
  /// usable — it does not count toward revival.
  [[nodiscard]] TimeNs sane_rtt_ceiling(int s) const;

  sim::Simulator& sim_;
  MptcpConnection& conn_;
  std::array<Slot, kMaxSubflows> slots_{};

  /// Lifetime token for probe echoes and timers (the monitor can be torn
  /// down with probes still on the wire).
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace progmp::mptcp
