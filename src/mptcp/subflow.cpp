#include "mptcp/subflow.hpp"

#include <algorithm>
#include <unordered_set>

namespace progmp::mptcp {

SubflowSender::SubflowSender(sim::Simulator& sim, sim::NetPath& path,
                             Receiver& receiver, int slot, Config cfg,
                             std::unique_ptr<tcp::CongestionControl> cc,
                             Host host)
    : sim_(sim),
      path_(path),
      receiver_(receiver),
      slot_(slot),
      cfg_(std::move(cfg)),
      cc_(std::move(cc)),
      host_(std::move(host)),
      established_at_(sim.now()),
      alive_(std::make_shared<int>(0)) {
  PROGMP_CHECK(slot_ >= 0 && slot_ < kMaxSubflows);
  PROGMP_CHECK(cc_ != nullptr);
}

SubflowSender::~SubflowSender() { disarm_rto(); }

void SubflowSender::set_tracer(Tracer* trace) {
  trace_ = trace;
  cc_->set_cwnd_hook([this](tcp::CwndEventKind kind, std::int64_t cwnd) {
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kCwndChange, sim_.now(), slot_,
                   static_cast<std::int32_t>(kind), cwnd);
    }
  });
}

void SubflowSender::enqueue(const SkbPtr& skb) {
  if (!established() || skb == nullptr || skb->acked || skb->dropped) return;
  queue_.push_back(skb);
  pump();
}

void SubflowSender::pump() {
  while (established() && !queue_.empty() &&
         in_flight() < cc_->cwnd() &&
         tsq_bytes_ < tsq_budget_bytes()) {
    SkbPtr skb = queue_.front();
    if (skb->acked || skb->dropped) {
      queue_.pop_front();
      continue;  // meta-acked while waiting: vanish from this queue too
    }
    if (host_.may_transmit && !host_.may_transmit(skb)) {
      if (host_.on_window_blocked) {
        // Hand the whole remaining queue back to the connection rather than
        // letting window-blocked packets occupy this subflow's cwnd
        // headroom indefinitely (see Host::on_window_blocked).
        std::vector<SkbPtr> blocked;
        blocked.reserve(queue_.size());
        for (const PacketQueue::Entry& e : queue_) blocked.push_back(e.skb);
        queue_.clear();
        host_.on_window_blocked(slot_, std::move(blocked));
      }
      break;
    }
    queue_.pop_front();
    transmit_fresh(skb);
  }
}

void SubflowSender::transmit_fresh(const SkbPtr& skb) {
  const TimeNs now = sim_.now();
  TxSeg seg{next_seq_++, skb->meta_seq, skb->size, skb, now, false};
  inflight_.push_back(seg);
  // A packet that was already on some wire before is a reinjection (or a
  // redundant copy); flag it so trace-derived rate series can tell goodput
  // apart from duplicated bytes.
  const bool reinject = skb->first_sent_at != TimeNs{0};
  if (!reinject) skb->first_sent_at = now;
  ++stats_.segments_sent;
  stats_.bytes_sent += skb->size;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kTx, now, slot_, reinject ? 1 : 0, skb->size,
                 static_cast<std::int64_t>(skb->meta_seq));
  }
  if (host_.on_transmitted) host_.on_transmitted(skb);
  put_on_wire(seg, /*is_retransmit=*/false);
  if (!rto_armed_) arm_rto();
}

void SubflowSender::put_on_wire(const TxSeg& seg, bool is_retransmit) {
  last_tx_at_ = sim_.now();
  // The wire carries the DSS checksum the sender computed for this mapping
  // (TxSeg keeps its own copy of the mapping, so recompute from it — equal
  // to the skb's dss_csum stamp).
  DataSegment ds{slot_, seg.sbf_seq, seg.meta_seq, seg.size,
                 dss_checksum(seg.meta_seq, seg.size)};
  std::weak_ptr<int> guard{alive_};
  const bool sent = path_.forward.send(
      seg.size + cfg_.header_bytes,
      /*on_serialized=*/
      [this, guard, size = seg.size] {
        if (guard.expired()) return;
        tsq_bytes_ -= size;
        pump();
        if (host_.on_tsq_freed) host_.on_tsq_freed(slot_);
      },
      /*on_delivered=*/
      [this, guard, ds]() mutable {
        if (guard.expired()) return;
        // Sample the link's middlebox verdict for this delivery and stamp
        // it onto the arriving segment: a stripped DSS option removes the
        // mapping, a rewriting proxy leaves the mapping but mangles the
        // checksum it can no longer recompute.
        switch (path_.forward.delivered_tamper()) {
          case sim::Link::TamperKind::kStripDss:
            ds.dss_stripped = true;
            break;
          case sim::Link::TamperKind::kRewritePayload:
            ds.payload_rewritten = true;
            ds.dss_csum ^= 0xBADF00Du;
            break;
          default:
            break;
        }
        const AckInfo ack = receiver_.on_data(ds);
        path_.reverse.send(kAckBytes, nullptr, [this, guard, ack] {
          if (guard.expired()) return;
          // An option-stripping middlebox on the ACK path removes the
          // DATA_ACK option but cannot touch the TCP header: subflow-level
          // ack and window survive, data-level progress is lost.
          const bool ack_stripped = path_.reverse.delivered_tamper() ==
                                    sim::Link::TamperKind::kStripAckOpts;
          if (established()) {
            if (ack_stripped) {
              AckInfo plain = ack;
              plain.meta_ack = 0;  // cumulative: 0 can never advance meta_una
              on_ack(plain);
            } else {
              on_ack(ack);
            }
          }
          if (ack_stripped && host_.on_ack_tampered) {
            host_.on_ack_tampered(slot_);
          }
        });
      });
  if (sent) {
    tsq_bytes_ += seg.size;
  }
  // An enqueue-full drop means the packet is simply gone — the RTO recovers
  // it exactly as a wire loss would.
  (void)is_retransmit;
}

void SubflowSender::retransmit_head() {
  if (inflight_.empty()) return;
  TxSeg& head = inflight_.front();
  head.retransmitted = true;  // Karn: no RTT sample from this segment
  head.sent_at = sim_.now();
  ++stats_.segments_retransmitted;
  stats_.bytes_sent += head.size;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kRetx, sim_.now(), slot_, 0, head.size,
                 static_cast<std::int64_t>(head.meta_seq));
  }
  put_on_wire(head, /*is_retransmit=*/true);
}

void SubflowSender::on_ack(const AckInfo& ack) {
  const TimeNs now = sim_.now();
  // Congestion window validation (RFC 7661 spirit): an application-limited
  // subflow whose window is not actually full must not grow it — otherwise
  // thin streams inflate cwnd without bound and every capacity estimate
  // derived from it (TAP, target-deadline) becomes meaningless.
  const bool cwnd_limited = in_flight() >= cc_->cwnd();
  if (ack.sbf_ack > snd_una_) {
    const auto newly = static_cast<std::int64_t>(ack.sbf_ack - snd_una_);
    snd_una_ = ack.sbf_ack;
    dupacks_ = 0;
    rto_backoff_ = 1;
    consecutive_rtos_ = 0;  // ACK progress: the path is alive
    probation_ = false;
    while (!inflight_.empty() && inflight_.front().sbf_seq < snd_una_) {
      const TxSeg& seg = inflight_.front();
      if (!seg.retransmitted) {
        rtt_.add_sample(now - seg.sent_at);
        cc_->set_rtt_hint(rtt_.srtt());
      }
      rate_.on_delivered(now, seg.size);
      inflight_.pop_front();
    }
    if (in_recovery_) {
      if (ack.sbf_ack >= recover_) {
        in_recovery_ = false;
        if (cwnd_limited) cc_->on_ack(newly, now);  // recovery-exit progress
      } else {
        retransmit_head();  // NewReno partial ACK
      }
    } else if (cwnd_limited) {
      cc_->on_ack(newly, now);
    }
    disarm_rto();
    if (!inflight_.empty()) arm_rto();
  } else if (!inflight_.empty()) {
    ++dupacks_;
    if (dupacks_ == kDupAckThreshold && !in_recovery_) {
      ++stats_.fast_retransmits;
      if (trace_ != nullptr) {
        const TxSeg& head = inflight_.front();
        trace_->emit(TraceEventType::kFastRetx, now, slot_, 0, head.size,
                     static_cast<std::int64_t>(head.meta_seq));
      }
      enter_recovery_and_reinject();
    }
  }
  if (host_.on_meta_ack) {
    host_.on_meta_ack(ack.meta_ack, ack.rwnd_bytes, ack.wnd_stamp);
  }
  pump();
  if (host_.on_ack_done) host_.on_ack_done(slot_);
}

void SubflowSender::enter_recovery_and_reinject() {
  in_recovery_ = true;
  recover_ = next_seq_;
  cc_->on_loss();
  if (inflight_.empty()) return;
  const SkbPtr skb = inflight_.front().skb;
  retransmit_head();
  if (skb != nullptr && !skb->acked && !skb->dropped &&
      host_.on_loss_suspected) {
    host_.on_loss_suspected(slot_, skb);
  }
}

void SubflowSender::on_rto_fired() {
  rto_armed_ = false;
  if (!established() || inflight_.empty()) return;
  ++stats_.rtos;
  ++consecutive_rtos_;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kRto, sim_.now(), slot_, rto_backoff_);
  }
  const int death_threshold = probation_ ? 1 : cfg_.rto_death_threshold;
  if (cfg_.rto_death_threshold > 0 && consecutive_rtos_ >= death_threshold &&
      host_.on_subflow_dead) {
    // The path looks dead. Hand the decision to the connection (which is
    // expected to call fail()) instead of burning another retransmit on a
    // black hole. Note: the callback may tear this subflow's queues down.
    host_.on_subflow_dead(slot_);
    return;
  }
  cc_->on_rto();
  rto_backoff_ = std::min(rto_backoff_ * 2, kMaxRtoBackoff);
  in_recovery_ = true;
  recover_ = next_seq_;
  const SkbPtr skb = inflight_.front().skb;
  retransmit_head();
  arm_rto();
  if (skb != nullptr && !skb->acked && !skb->dropped &&
      host_.on_loss_suspected) {
    host_.on_loss_suspected(slot_, skb);
  }
}

void SubflowSender::arm_rto() {
  PROGMP_CHECK(!rto_armed_);
  std::weak_ptr<int> guard{alive_};
  // Kernel-style backoff clamp: the multiplier is capped at kMaxRtoBackoff
  // and the armed timeout itself at kMaxBackoffRto (TCP_RTO_MAX analogue) —
  // otherwise a high-RTT path can back off to over an hour between probes.
  const TimeNs timeout = std::min(rtt_.rto() * rto_backoff_, kMaxBackoffRto);
  rto_event_ = sim_.schedule_after(timeout, [this, guard] {
    if (guard.expired()) return;
    on_rto_fired();
  });
  rto_armed_ = true;
}

void SubflowSender::disarm_rto() {
  if (!rto_armed_) return;
  sim_.cancel(rto_event_);
  rto_armed_ = false;
}

void SubflowSender::purge_acked(const SkbPtr& skb) {
  // Redundant pushes can place the same skb in this queue more than once;
  // an ACK removes every copy.
  while (queue_.erase(skb.get())) {
  }
}

bool SubflowSender::tracks(const Skb* skb) const {
  if (queue_.contains(skb)) return true;
  for (const TxSeg& seg : inflight_) {
    if (seg.skb.get() == skb) return true;
  }
  return false;
}

std::int64_t SubflowSender::tsq_budget_bytes() const {
  // ~2 ms of data at twice the cwnd/srtt pacing-rate estimate, clamped —
  // the kernel's small-queue rule in the TSO era.
  const TimeNs srtt = rtt_.has_sample() ? rtt_.srtt() : path_.base_rtt();
  const double pacing_bps =
      2.0 * tcp::RateEstimator::cwnd_rate(cc_->cwnd(), cfg_.mss, srtt);
  const auto two_ms_worth = static_cast<std::int64_t>(pacing_bps / 500.0);
  return std::clamp(two_ms_worth, cfg_.tsq_min_bytes, cfg_.tsq_max_bytes);
}

SubflowInfo SubflowSender::info(TimeNs now) const {
  SubflowInfo i;
  i.slot = slot_;
  i.name = cfg_.name;
  i.is_backup = cfg_.backup;
  i.preferred = cfg_.preferred;
  i.established = established();
  i.tsq_throttled = tsq_bytes_ >= tsq_budget_bytes();
  i.lossy = in_recovery_;
  i.cwnd = cc_->cwnd();
  i.skbs_in_flight = in_flight();
  i.queued = queued();
  // Before the first RTT sample, fall back to the path's base RTT — the
  // kernel similarly seeds its estimate from the handshake.
  i.rtt = rtt_.has_sample() ? rtt_.srtt() : path_.base_rtt();
  i.rtt_var = rtt_.has_sample() ? rtt_.rttvar() : path_.base_rtt() / 2;
  i.min_rtt = rtt_.has_sample() ? rtt_.min_rtt() : path_.base_rtt();
  i.last_rtt = rtt_.has_sample() ? rtt_.last_rtt() : path_.base_rtt();
  i.mss = cfg_.mss;
  i.delivery_rate_bps = rate_.delivery_rate(now);
  i.capacity_bps = tcp::RateEstimator::cwnd_rate(i.cwnd, i.mss, i.rtt);
  i.established_at = established_at_;
  i.last_tx_at = last_tx_at_;
  return i;
}

std::vector<SkbPtr> SubflowSender::harvest_and_clear() {
  disarm_rto();
  std::vector<SkbPtr> orphans;
  std::unordered_set<const Skb*> seen;
  auto collect = [&](const SkbPtr& skb) {
    if (skb == nullptr || skb->acked || skb->dropped) return;
    if (seen.insert(skb.get()).second) orphans.push_back(skb);
  };
  for (const PacketQueue::Entry& e : queue_) collect(e.skb);
  for (const TxSeg& seg : inflight_) collect(seg.skb);
  queue_.clear();
  inflight_.clear();
  return orphans;
}

std::vector<SkbPtr> SubflowSender::close() {
  state_ = State::kClosed;
  return harvest_and_clear();
}

std::vector<SkbPtr> SubflowSender::fail() {
  if (state_ != State::kEstablished) return {};
  state_ = State::kFailed;
  ++stats_.deaths;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kSubflowDead, sim_.now(), slot_,
                 consecutive_rtos_);
  }
  return harvest_and_clear();
}

void SubflowSender::reopen() {
  if (!can_revive()) return;
  state_ = State::kEstablished;
  // Fresh subflow sequence space — the receiver's per-slot state must be
  // reset in tandem (Connection::revive_subflow does both).
  next_seq_ = 0;
  snd_una_ = 0;
  dupacks_ = 0;
  in_recovery_ = false;
  recover_ = 0;
  rto_backoff_ = 1;
  consecutive_rtos_ = 0;
  probation_ = true;  // must prove itself with an ACK before RTOs are
                      // tolerated again
  established_at_ = sim_.now();
  last_tx_at_ = TimeNs{0};
  // Slow-start restart: whatever cwnd the subflow had before the failure
  // says nothing about the revived path.
  cc_->on_rto();
  ++stats_.revivals;
  // tsq_bytes_ is deliberately NOT reset: in-flight serialize callbacks from
  // before the failure still decrement it when the link drains.
}

}  // namespace progmp::mptcp
