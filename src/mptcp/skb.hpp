// Packet entities (the paper's sk_buff analogue).
//
// One Skb is one MSS-sized segment of application data, identified by its
// meta (data-level) sequence number. Skbs are shared between the sending
// queue Q, the in-flight queue QU, the reinjection queue RQ and per-subflow
// queues; membership is tracked with flags so that a data-level ACK removes
// the packet from *all* queues (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "core/time.hpp"

namespace progmp::mptcp {

/// Upper bound on concurrently active subflows per connection; per-skb
/// per-subflow bookkeeping uses fixed arrays of this size.
inline constexpr int kMaxSubflows = 8;

/// Application-settable per-packet properties (the extended API's "packet
/// properties", §3.2). Two general-purpose integers cover the paper's use
/// cases: content class for HTTP/2-aware scheduling, priority flags, etc.
struct SkbProps {
  std::int64_t prop1 = 0;
  std::int64_t prop2 = 0;
  bool flow_end = false;  ///< application signals the last packet of a flow
};

/// Deterministic stand-in for the RFC 8684 §3.3 DSS checksum: a hash over
/// the mapping (meta_seq) and payload length, computed by the sender when a
/// packet enters Q and validated by the receiver when Config::dss_checksum is
/// on. A payload-rewriting middlebox changes the bytes but cannot fix the
/// checksum, which is exactly what the real DSS checksum exists to catch.
inline std::uint32_t dss_checksum(std::uint64_t meta_seq, std::int32_t size) {
  return static_cast<std::uint32_t>((meta_seq * 2654435761ULL) ^
                                    static_cast<std::uint32_t>(size));
}

struct Skb {
  std::uint64_t meta_seq = 0;  ///< data-level sequence number (in segments)
  std::uint64_t byte_offset = 0;  ///< first payload byte's stream offset
  std::int32_t size = 0;       ///< payload bytes
  std::uint32_t dss_csum = 0;  ///< DSS checksum over the mapping (see above)
  SkbProps props;

  TimeNs queued_at{0};      ///< when the application pushed it into Q
  TimeNs first_sent_at{0};  ///< first wire transmission (any subflow)

  /// Bitmask of subflow slots this skb has been scheduled on (set at PUSH
  /// time so redundancy filters like !SENT_ON(sbf) cannot double-schedule
  /// during one execution round).
  std::uint32_t sent_mask = 0;
  std::array<TimeNs, kMaxSubflows> sent_at{};  ///< per-subflow schedule time

  // Queue membership flags (the augmented-queue bookkeeping of §4.1).
  bool in_q = false;
  bool in_qu = false;
  bool in_rq = false;
  bool acked = false;
  bool dropped = false;  ///< removed via the DROP primitive

  /// Intrusive membership index, maintained by the tracked PacketQueue for
  /// Q/QU/RQ (indexed by QueueId): the physical ring slot currently holding
  /// this packet. Only meaningful while the matching membership flag above
  /// is set; gives O(1) membership tests and mid-queue removal.
  std::array<std::uint32_t, 3> queue_pos{};

  [[nodiscard]] bool sent_on(int sbf_slot) const {
    return (sent_mask & (1u << sbf_slot)) != 0;
  }
  void mark_sent_on(int sbf_slot, TimeNs at) {
    sent_mask |= (1u << sbf_slot);
    sent_at[static_cast<std::size_t>(sbf_slot)] = at;
  }
};

using SkbPtr = std::shared_ptr<Skb>;

}  // namespace progmp::mptcp
