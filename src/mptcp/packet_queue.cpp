#include "mptcp/packet_queue.hpp"

#include <utility>

namespace progmp::mptcp {

bool Skb::* PacketQueue::member_flag() const {
  switch (static_cast<QueueId>(index_)) {
    case QueueId::kQ:
      return &Skb::in_q;
    case QueueId::kQu:
      return &Skb::in_qu;
    case QueueId::kRq:
      return &Skb::in_rq;
  }
  PROGMP_UNREACHABLE("bad queue index");
}

void PacketQueue::place(std::size_t slot, const SkbPtr& skb) {
  Entry& e = ring_[slot];
  e.skb = skb;
  e.meta_seq = skb->meta_seq;
  e.size = skb->size;
  e.sent_mask = skb->sent_mask;
  e.flow_end = skb->props.flow_end;
  if (tracked()) {
    skb->queue_pos[static_cast<std::size_t>(index_)] =
        static_cast<std::uint32_t>(slot);
  }
}

void PacketQueue::move_entry(std::size_t from, std::size_t to) {
  ring_[to] = std::move(ring_[from]);
  if (tracked() && ring_[to].skb != nullptr) {
    ring_[to].skb->queue_pos[static_cast<std::size_t>(index_)] =
        static_cast<std::uint32_t>(to);
  }
}

void PacketQueue::add_aggregates(const Entry& e) {
  bytes_ += e.size;
  if (e.flow_end) ++flow_end_count_;
  if (e.sent_mask != 0) ++sent_count_;
  if (size_ == 1) {
    min_seq_ = max_seq_ = e.meta_seq;
    minmax_dirty_ = false;
  } else if (!minmax_dirty_) {
    if (e.meta_seq < min_seq_) min_seq_ = e.meta_seq;
    if (e.meta_seq > max_seq_) max_seq_ = e.meta_seq;
  }
}

void PacketQueue::sub_aggregates(const Entry& e) {
  bytes_ -= e.size;
  if (e.flow_end) --flow_end_count_;
  if (e.sent_mask != 0) --sent_count_;
  // Removing the current extremum invalidates the cache; an interior
  // removal cannot change min/max. The recompute cost lands on the next
  // aggregate reader, keeping pops O(1).
  if (!minmax_dirty_ && (e.meta_seq == min_seq_ || e.meta_seq == max_seq_)) {
    minmax_dirty_ = true;
  }
}

void PacketQueue::recompute_minmax() const {
  if (size_ == 0) {
    min_seq_ = max_seq_ = 0;
    minmax_dirty_ = false;
    return;
  }
  std::uint64_t mn = ring_[slot_of(0)].meta_seq;
  std::uint64_t mx = mn;
  for (std::size_t i = 1; i < size_; ++i) {
    const std::uint64_t seq = ring_[slot_of(i)].meta_seq;
    if (seq < mn) mn = seq;
    if (seq > mx) mx = seq;
  }
  min_seq_ = mn;
  max_seq_ = mx;
  minmax_dirty_ = false;
}

std::uint64_t PacketQueue::min_meta_seq() const {
  if (minmax_dirty_) recompute_minmax();
  return size_ == 0 ? 0 : min_seq_;
}

std::uint64_t PacketQueue::max_meta_seq() const {
  if (minmax_dirty_) recompute_minmax();
  return size_ == 0 ? 0 : max_seq_;
}

void PacketQueue::grow() {
  const std::size_t cap = ring_.empty() ? 16 : ring_.size() * 2;
  std::vector<Entry> next(cap);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = std::move(ring_[slot_of(i)]);
  }
  ring_ = std::move(next);
  mask_ = cap - 1;
  head_ = 0;
  if (tracked()) {
    for (std::size_t i = 0; i < size_; ++i) {
      ring_[i].skb->queue_pos[static_cast<std::size_t>(index_)] =
          static_cast<std::uint32_t>(i);
    }
  }
}

void PacketQueue::push_back(const SkbPtr& skb) {
  PROGMP_CHECK(skb != nullptr);
  if (tracked()) {
    bool Skb::* flag = member_flag();
    PROGMP_CHECK_MSG(!(skb.get()->*flag), "skb already in this queue");
    skb.get()->*flag = true;
  }
  if (size_ == ring_.size()) grow();
  const std::size_t slot = slot_of(size_);
  place(slot, skb);
  ++size_;
  add_aggregates(ring_[slot]);
}

void PacketQueue::push_front(const SkbPtr& skb) {
  PROGMP_CHECK(skb != nullptr);
  if (tracked()) {
    bool Skb::* flag = member_flag();
    PROGMP_CHECK_MSG(!(skb.get()->*flag), "skb already in this queue");
    skb.get()->*flag = true;
  }
  if (size_ == ring_.size()) grow();
  head_ = (head_ + mask_) & mask_;  // head_ - 1 mod capacity
  place(head_, skb);
  ++size_;
  add_aggregates(ring_[head_]);
}

SkbPtr PacketQueue::pop_front() {
  if (size_ == 0) return nullptr;
  Entry& e = ring_[head_];
  sub_aggregates(e);
  if (tracked()) e.skb.get()->*member_flag() = false;
  SkbPtr out = std::move(e.skb);
  head_ = (head_ + 1) & mask_;
  --size_;
  if (size_ == 0) {
    min_seq_ = max_seq_ = 0;
    minmax_dirty_ = false;
  }
  return out;
}

SkbPtr PacketQueue::pop_at(std::size_t index) {
  if (index >= size_) return nullptr;
  if (index == 0) return pop_front();
  const std::size_t slot = slot_of(index);
  Entry& e = ring_[slot];
  sub_aggregates(e);
  if (tracked()) e.skb.get()->*member_flag() = false;
  SkbPtr out = std::move(e.skb);
  // Close the gap by shifting the shorter side of the ring by one slot.
  if (index < size_ - 1 - index) {
    for (std::size_t j = index; j > 0; --j) {
      move_entry(slot_of(j - 1), slot_of(j));
    }
    head_ = (head_ + 1) & mask_;
  } else {
    for (std::size_t j = index + 1; j < size_; ++j) {
      move_entry(slot_of(j), slot_of(j - 1));
    }
  }
  --size_;
  if (size_ == 0) {
    min_seq_ = max_seq_ = 0;
    minmax_dirty_ = false;
  }
  return out;
}

bool PacketQueue::erase(const Skb* skb) {
  if (skb == nullptr || size_ == 0) return false;
  if (tracked()) {
    if (!(skb->*member_flag())) return false;
    const std::size_t slot = skb->queue_pos[static_cast<std::size_t>(index_)];
    const std::size_t logical = (slot - head_) & mask_;
    PROGMP_CHECK_MSG(logical < size_ && ring_[slot].skb.get() == skb,
                     "intrusive queue index corrupt");
    pop_at(logical);
    return true;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    if (ring_[slot_of(i)].skb.get() == skb) {
      pop_at(i);
      return true;
    }
  }
  return false;
}

bool PacketQueue::contains(const Skb* skb) const {
  if (skb == nullptr || size_ == 0) return false;
  if (tracked()) {
    if (!(skb->*member_flag())) return false;
    const std::size_t slot = skb->queue_pos[static_cast<std::size_t>(index_)];
    const std::size_t logical = (slot - head_) & mask_;
    return logical < size_ && ring_[slot].skb.get() == skb;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    if (ring_[slot_of(i)].skb.get() == skb) return true;
  }
  return false;
}

void PacketQueue::clear() {
  for (std::size_t i = 0; i < size_; ++i) {
    Entry& e = ring_[slot_of(i)];
    if (tracked()) e.skb.get()->*member_flag() = false;
    e.skb.reset();
  }
  head_ = 0;
  size_ = 0;
  bytes_ = 0;
  flow_end_count_ = 0;
  sent_count_ = 0;
  min_seq_ = max_seq_ = 0;
  minmax_dirty_ = false;
}

void PacketQueue::refresh_sent_mask(const Skb* skb) {
  if (!tracked() || skb == nullptr || !(skb->*member_flag())) return;
  const std::size_t slot = skb->queue_pos[static_cast<std::size_t>(index_)];
  Entry& e = ring_[slot];
  PROGMP_CHECK_MSG(e.skb.get() == skb, "intrusive queue index corrupt");
  sent_count_ +=
      static_cast<int>(skb->sent_mask != 0) - static_cast<int>(e.sent_mask != 0);
  e.sent_mask = skb->sent_mask;
}

std::optional<std::string> PacketQueue::audit() const {
  std::int64_t bytes = 0;
  std::int64_t flow_ends = 0;
  std::int64_t sent = 0;
  std::uint64_t mn = 0;
  std::uint64_t mx = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t slot = slot_of(i);
    const Entry& e = ring_[slot];
    if (e.skb == nullptr) {
      return "null skb at logical index " + std::to_string(i);
    }
    const Skb& s = *e.skb;
    const std::string id = "skb meta_seq=" + std::to_string(s.meta_seq);
    if (e.meta_seq != s.meta_seq || e.size != s.size ||
        e.flow_end != s.props.flow_end) {
      return id + ": cached entry fields out of sync";
    }
    if (e.sent_mask != s.sent_mask) {
      return id + ": cached sent_mask " + std::to_string(e.sent_mask) +
             " != live " + std::to_string(s.sent_mask);
    }
    if (tracked()) {
      if (!(s.*member_flag())) {
        return id + ": queue member without membership flag";
      }
      // The stored slot must name exactly this entry. Because each physical
      // slot holds one entry, a round-tripping index also proves the queue
      // is duplicate-free — a second entry for the same skb could not match
      // the single stored slot.
      if (s.queue_pos[static_cast<std::size_t>(index_)] != slot) {
        return id + ": intrusive slot index " +
               std::to_string(s.queue_pos[static_cast<std::size_t>(index_)]) +
               " does not round-trip to physical slot " + std::to_string(slot);
      }
    }
    bytes += e.size;
    if (e.flow_end) ++flow_ends;
    if (e.sent_mask != 0) ++sent;
    if (i == 0) {
      mn = mx = e.meta_seq;
    } else {
      if (e.meta_seq < mn) mn = e.meta_seq;
      if (e.meta_seq > mx) mx = e.meta_seq;
    }
  }
  if (bytes != bytes_) {
    return "cached byte total " + std::to_string(bytes_) + " != recompute " +
           std::to_string(bytes);
  }
  if (flow_ends != flow_end_count_) {
    return "cached flow_end count " + std::to_string(flow_end_count_) +
           " != recompute " + std::to_string(flow_ends);
  }
  if (sent != sent_count_) {
    return "cached sent count " + std::to_string(sent_count_) +
           " != recompute " + std::to_string(sent);
  }
  if (size_ > 0 && (min_meta_seq() != mn || max_meta_seq() != mx)) {
    return "cached min/max meta_seq [" + std::to_string(min_meta_seq()) + ", " +
           std::to_string(max_meta_seq()) + "] != recompute [" +
           std::to_string(mn) + ", " + std::to_string(mx) + "]";
  }
  return std::nullopt;
}

}  // namespace progmp::mptcp
