#include "mptcp/skb_pool.hpp"

#include <new>

#include "core/check.hpp"

namespace progmp::mptcp {
namespace detail {
namespace {

constexpr std::size_t kChunksPerSlab = 256;

constexpr std::size_t round_up(std::size_t bytes) {
  constexpr std::size_t a = alignof(std::max_align_t);
  return (bytes + a - 1) / a * a;
}

}  // namespace

SkbPoolCore::~SkbPoolCore() {
  for (void* slab : slabs_) ::operator delete(slab);
}

SkbPoolCore::Bin& SkbPoolCore::bin_for(std::size_t chunk_size) {
  if (hot_bin_ < bins_.size() && bins_[hot_bin_].chunk_size == chunk_size) {
    return bins_[hot_bin_];
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].chunk_size == chunk_size) {
      hot_bin_ = i;
      return bins_[i];
    }
  }
  bins_.push_back(Bin{chunk_size, {}});
  hot_bin_ = bins_.size() - 1;
  return bins_.back();
}

void* SkbPoolCore::allocate(std::size_t bytes) {
  const std::size_t chunk_size = round_up(bytes);
  Bin& bin = bin_for(chunk_size);
  if (bin.free_chunks.empty()) {
    auto* slab =
        static_cast<unsigned char*>(::operator new(chunk_size * kChunksPerSlab));
    slabs_.push_back(slab);
    ++stats_.slabs;
    bin.free_chunks.reserve(bin.free_chunks.size() + kChunksPerSlab);
    // Reverse order so chunks are handed out slab-start first.
    for (std::size_t i = kChunksPerSlab; i > 0; --i) {
      bin.free_chunks.push_back(slab + (i - 1) * chunk_size);
    }
    stats_.chunks_carved += kChunksPerSlab;
  } else {
    ++stats_.chunks_recycled;
  }
  void* p = bin.free_chunks.back();
  bin.free_chunks.pop_back();
  ++stats_.live_chunks;
  if (stats_.live_chunks > stats_.peak_live_chunks) {
    stats_.peak_live_chunks = stats_.live_chunks;
  }
  return p;
}

void SkbPoolCore::deallocate(void* p, std::size_t bytes) {
  Bin& bin = bin_for(round_up(bytes));
  bin.free_chunks.push_back(p);
  PROGMP_CHECK(stats_.live_chunks > 0);
  --stats_.live_chunks;
}

std::shared_ptr<SkbPoolCore> skb_pool_core() {
  static std::shared_ptr<SkbPoolCore> core =
      std::make_shared<SkbPoolCore>();
  return core;
}

}  // namespace detail

SkbPtr make_skb() {
  // One-time core lookup; allocate_shared copies the allocator (and its
  // core reference) into the control block, which is what keeps the pool
  // alive until the last Skb dies.
  static const detail::SkbPoolAllocator<Skb> alloc(detail::skb_pool_core());
  return std::allocate_shared<Skb>(alloc);
}

SkbPoolStats skb_pool_stats() { return detail::skb_pool_core()->stats(); }

}  // namespace progmp::mptcp
