#include "mptcp/conn_invariants.hpp"

#include <memory>
#include <string>
#include <vector>

#include "mptcp/connection.hpp"

namespace progmp::mptcp {
namespace {

std::string skb_id(const Skb& skb) {
  return "skb meta_seq=" + std::to_string(skb.meta_seq);
}

}  // namespace

void install_connection_invariants(InvariantChecker& checker,
                                   const MptcpConnection& conn) {
  checker.add_check(
      "byte_conservation_cheap",
      [&conn]() -> std::optional<std::string> {
        if (conn.delivered_bytes() > conn.written_bytes()) {
          return "delivered " + std::to_string(conn.delivered_bytes()) +
                 " > written " + std::to_string(conn.written_bytes());
        }
        if (conn.meta_una_bytes() >
            static_cast<std::uint64_t>(conn.written_bytes())) {
          return "meta_una_bytes " + std::to_string(conn.meta_una_bytes()) +
                 " > written " + std::to_string(conn.written_bytes());
        }
        return std::nullopt;
      },
      /*every_event=*/true);

  // Growth-gated in-flight vs cwnd; prev holds the last boundary's counts.
  auto prev = std::make_shared<std::vector<std::int64_t>>();
  checker.add_check(
      "inflight_le_cwnd",
      [&conn, prev]() -> std::optional<std::string> {
        const auto n = static_cast<std::size_t>(conn.subflow_count());
        if (prev->size() < n) prev->resize(n, 0);
        std::optional<std::string> bad;
        for (std::size_t s = 0; s < n; ++s) {
          const SubflowSender& sbf = conn.subflow(static_cast<int>(s));
          const std::int64_t infl = sbf.in_flight();
          const std::int64_t cwnd = sbf.cwnd();
          if (!bad && infl > (*prev)[s] && infl > cwnd) {
            bad = "sbf" + std::to_string(s) + " grew in-flight to " +
                  std::to_string(infl) + " segments beyond cwnd " +
                  std::to_string(cwnd);
          }
          (*prev)[s] = infl;
        }
        return bad;
      },
      /*every_event=*/true);

  checker.add_check(
      "byte_conservation", [&conn]() -> std::optional<std::string> {
        std::int64_t outstanding = 0;
        for (const auto& [seq, skb] : conn.unacked()) outstanding += skb->size;
        const std::int64_t accounted =
            static_cast<std::int64_t>(conn.meta_una_bytes()) + outstanding;
        if (accounted != conn.written_bytes()) {
          return "meta_una_bytes + unacked = " + std::to_string(accounted) +
                 " != written " + std::to_string(conn.written_bytes());
        }
        return std::nullopt;
      });

  checker.add_check(
      "queue_membership", [&conn]() -> std::optional<std::string> {
        // audit() proves each queue's internals: membership flag set, the
        // intrusive slot index round-trips (which rules out duplicates), and
        // every cached aggregate — including the QU byte total that replaced
        // the hand-maintained qu_bytes counter — matches a recompute.
        struct NamedQueue {
          const char* name;
          const PacketQueue* queue;
        };
        const NamedQueue queues[] = {{"Q", &conn.sending_queue()},
                                     {"QU", &conn.inflight_queue()},
                                     {"RQ", &conn.reinjection_queue()}};
        for (const NamedQueue& nq : queues) {
          if (auto bad = nq.queue->audit()) {
            return std::string(nq.name) + ": " + *bad;
          }
        }
        // Lifecycle exclusion stays a connection-level rule: acked/dropped
        // packets must not linger in any queue (QU tolerates dropped-on-wire
        // packets no more than Q/RQ do for acked ones).
        for (const PacketQueue::Entry& e : conn.sending_queue()) {
          if (e.skb->acked || e.skb->dropped) {
            return skb_id(*e.skb) + " in Q but acked/dropped";
          }
        }
        for (const PacketQueue::Entry& e : conn.inflight_queue()) {
          if (e.skb->acked) return skb_id(*e.skb) + " in QU but already acked";
        }
        for (const PacketQueue::Entry& e : conn.reinjection_queue()) {
          if (e.skb->acked || e.skb->dropped) {
            return skb_id(*e.skb) + " in RQ but acked/dropped";
          }
        }
        return std::nullopt;
      });

  checker.add_check(
      "sent_mask_sanity", [&conn]() -> std::optional<std::string> {
        const std::uint32_t valid =
            (1u << static_cast<unsigned>(conn.subflow_count())) - 1u;
        for (const auto& [seq, skb] : conn.unacked()) {
          if ((skb->sent_mask & ~valid) != 0) {
            return skb_id(*skb) + " sent_mask " +
                   std::to_string(skb->sent_mask) +
                   " names a slot beyond subflow_count " +
                   std::to_string(conn.subflow_count());
          }
        }
        return std::nullopt;
      });

  checker.add_check(
      "recv_buffer_bound",
      [&conn]() -> std::optional<std::string> {
        const Receiver& rx = conn.receiver();
        if (rx.rwnd_bytes() < 0 || conn.rwnd_bytes() < 0) {
          return "negative receive window: receiver " +
                 std::to_string(rx.rwnd_bytes()) + ", sender view " +
                 std::to_string(conn.rwnd_bytes());
        }
        // The occupancy bound only holds once enforcement is on — without
        // it the reassembly buffers are unbounded by design (seed mode).
        // The bound is the liability envelope, not the raw target: after a
        // pool reclaim shrank the buffer, data sent against the pre-shrink
        // advertisement is still legitimate until consumed (== the static
        // recv_buf_bytes whenever the buffer was never resized).
        if (rx.config().enforce_recv_buf &&
            rx.buffered_bytes() > rx.mem_liability_bytes()) {
          return "receive buffer overrun: unread+ooo " +
                 std::to_string(rx.buffered_bytes()) + " > liability " +
                 std::to_string(rx.mem_liability_bytes());
        }
        return std::nullopt;
      },
      /*every_event=*/true);

  // Growth-gated sender-vs-window check: cross-path reordering can shrink
  // the sender's *view* of the window after data was legitimately sent
  // (rwnd_ is overwritten by whichever ACK arrives last), so only an
  // advance of the transmitted right edge past the currently-believed
  // window edge is a violation — the transmission gate saw the same state.
  auto prev_edge = std::make_shared<std::uint64_t>(0);
  checker.add_check(
      "sender_within_window",
      [&conn, prev_edge]() -> std::optional<std::string> {
        const std::uint64_t edge = conn.right_edge_bytes();
        std::optional<std::string> bad;
        if (edge > *prev_edge &&
            edge > conn.meta_una_bytes() +
                       static_cast<std::uint64_t>(conn.rwnd_bytes())) {
          bad = "transmitted right edge " + std::to_string(edge) +
                " grew past meta_una " + std::to_string(conn.meta_una_bytes()) +
                " + advertised window " + std::to_string(conn.rwnd_bytes());
        }
        *prev_edge = edge;
        return bad;
      },
      /*every_event=*/true);

  checker.add_check("receiver_accounting",
                    [&conn]() -> std::optional<std::string> {
                      return conn.receiver().audit();
                    });

  checker.add_check(
      "fallback_mode", [&conn]() -> std::optional<std::string> {
        // The transition is synchronous, so audits never observe the
        // intermediate kFallbackPending state at an event boundary.
        if (conn.fallback_state() == FallbackState::kFallbackPending) {
          return "fallback stuck in kFallbackPending across an event "
                 "boundary";
        }
        if (conn.fallback_state() != FallbackState::kSinglePath) {
          return std::nullopt;
        }
        const int survivor = conn.fallback_survivor();
        if (survivor < 0 || survivor >= conn.subflow_count()) {
          return "single-path mode with invalid survivor slot " +
                 std::to_string(survivor);
        }
        for (int s = 0; s < conn.subflow_count(); ++s) {
          if (s == survivor) continue;
          const SubflowSender& sbf = conn.subflow(s);
          // Abandoned subflows must be closed (not merely failed — failed
          // ones can be revived, which would silently undo the fallback)
          // and drained: the harvest moved their packets to RQ, and the
          // engine must never schedule new data onto them.
          if (sbf.state() != SubflowSender::State::kClosed) {
            return "single-path mode but sbf" + std::to_string(s) +
                   " is not closed";
          }
          if (sbf.queued() != 0 || sbf.in_flight() != 0) {
            return "abandoned sbf" + std::to_string(s) + " still owns data: " +
                   std::to_string(sbf.queued()) + " queued, " +
                   std::to_string(sbf.in_flight()) + " in flight";
          }
        }
        return std::nullopt;
      },
      /*every_event=*/true);

  checker.add_check(
      "no_stranded_packets", [&conn]() -> std::optional<std::string> {
        for (const auto& [seq, skb] : conn.unacked()) {
          if (skb->acked || skb->dropped) continue;
          if (skb->in_q || skb->in_rq) continue;
          bool owned = conn.receiver().has_received(skb->meta_seq);
          for (int s = 0; !owned && s < conn.subflow_count(); ++s) {
            owned = conn.subflow(s).tracks(skb.get());
          }
          if (!owned) {
            return skb_id(*skb) +
                   " is stranded: not in Q/RQ, no subflow tracks it and the "
                   "receiver never saw it";
          }
        }
        return std::nullopt;
      });
}

}  // namespace progmp::mptcp
