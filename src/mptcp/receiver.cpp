#include "mptcp/receiver.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace progmp::mptcp {

AckInfo Receiver::on_data(const DataSegment& seg) {
  PROGMP_CHECK(seg.sbf_slot >= 0 && seg.sbf_slot < kMaxSubflows);
  SubflowRx& rx = subflows_[static_cast<std::size_t>(seg.sbf_slot)];

  if (seg.sbf_seq < rx.expected || rx.ooo.contains(seg.sbf_seq)) {
    // Subflow-level duplicate (spurious retransmission); re-ACK.
    ++dup_segs_;
    ++dup_segs_network_;
    return make_ack(seg.sbf_slot);
  }

  // Bounded reassembly: a first-seen segment that would be *parked* out of
  // order must fit in what is left of the receive buffer, or it is dropped
  // as if lost on the wire (the sender's RTO recovers it once space frees
  // up). In-order data always fits — the advertised window already charges
  // for unread bytes, and OOO data inside the advertised span never shrank
  // it — so only the slow-path-fills-the-buffer pathology is cut off here.
  if (cfg_.enforce_recv_buf && would_park(rx, seg) &&
      buffered_bytes() + seg.size > mem_liability_bytes()) {
    ++recv_buf_drops_;
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kRecvBufDrop, sim_.now(), seg.sbf_slot,
                   buffered_bytes(), seg.size,
                   static_cast<std::int64_t>(seg.meta_seq));
    }
    return make_ack(seg.sbf_slot);
  }

  if (seg.sbf_seq == rx.expected) {
    // In subflow order: advance and drain any now-contiguous held segments.
    ++rx.expected;
    if (cfg_.model == ReceiverModel::kMultiLayer) {
      meta_receive_checked(seg);
    }
    auto it = rx.ooo.begin();
    while (it != rx.ooo.end() && it->first == rx.expected) {
      ++rx.expected;
      if (cfg_.model == ReceiverModel::kMultiLayer) {
        sbf_ooo_bytes_ -= it->second.size;
        meta_receive_checked(it->second);
      }
      index_erase(it->second.meta_seq);
      it = rx.ooo.erase(it);
    }
  } else {
    // Subflow-level out of order: hold (multilayer keeps the data hostage
    // here; optimized only remembers the seq for ACK bookkeeping).
    rx.ooo.emplace(seg.sbf_seq, seg);
    ++sbf_ooo_meta_[seg.meta_seq];
    if (cfg_.model == ReceiverModel::kMultiLayer) {
      sbf_ooo_bytes_ += seg.size;
    }
  }

  if (cfg_.model == ReceiverModel::kOptimized) {
    // The optimized receiver hands every first-seen segment to the meta
    // layer immediately, regardless of subflow ordering.
    meta_receive_checked(seg);
  }

  if (cfg_.autotune) maybe_autotune();

  return make_ack(seg.sbf_slot);
}

AckInfo Receiver::peek_ack(int slot) {
  PROGMP_CHECK(slot >= 0 && slot < kMaxSubflows);
  const AckInfo ack{slot, subflows_[static_cast<std::size_t>(slot)].expected,
                    meta_expected_, rwnd_bytes(), ack_stamp_};
  note_advertised(ack.rwnd_bytes);
  return ack;
}

bool Receiver::would_park(const SubflowRx& rx, const DataSegment& seg) const {
  if (seg.sbf_seq > rx.expected) return true;  // subflow-level hold
  // In subflow order; parks only when the meta reassembly has to hold it.
  return seg.meta_seq > meta_expected_ && meta_ooo_.count(seg.meta_seq) == 0;
}

AckInfo Receiver::make_ack(int slot) {
  const AckInfo ack{slot, subflows_[static_cast<std::size_t>(slot)].expected,
                    meta_expected_, rwnd_bytes(), ++ack_stamp_};
  last_advertised_rwnd_ = ack.rwnd_bytes;
  note_advertised(ack.rwnd_bytes);
  return ack;
}

void Receiver::note_advertised(std::int64_t rwnd) {
  // The sender's license to transmit now extends to rcv_nxt + rwnd. In
  // delivered-byte coordinates that right edge is delivered_bytes_ + rwnd;
  // the monotone max over all advertisements is what the liability envelope
  // must keep covering after a buffer shrink.
  max_right_edge_bytes_ =
      std::max(max_right_edge_bytes_, delivered_bytes_ + rwnd);
}

void Receiver::index_erase(std::uint64_t meta_seq) {
  auto it = sbf_ooo_meta_.find(meta_seq);
  PROGMP_CHECK(it != sbf_ooo_meta_.end());
  if (--it->second == 0) sbf_ooo_meta_.erase(it);
}

void Receiver::reset_subflow(int slot) {
  PROGMP_CHECK(slot >= 0 && slot < kMaxSubflows);
  SubflowRx& rx = subflows_[static_cast<std::size_t>(slot)];
  for (const auto& [seq, seg] : rx.ooo) {
    // Segments held hostage at the subflow level die with the subflow; the
    // sender reinjects the unacked meta range elsewhere anyway.
    if (cfg_.model == ReceiverModel::kMultiLayer) sbf_ooo_bytes_ -= seg.size;
    index_erase(seg.meta_seq);
  }
  rx.ooo.clear();
  rx.expected = 0;
}

void Receiver::meta_receive_checked(const DataSegment& seg) {
  const bool csum_bad =
      cfg_.dss_checksum && !seg.dss_stripped &&
      seg.dss_csum != dss_checksum(seg.meta_seq, seg.size);
  if (seg.dss_stripped) {
    // The bytes arrived as plain TCP data with no DSS mapping: the subflow
    // level already processed (and will ACK) them, but the meta layer has
    // nothing to place. A detecting receiver reports the mapping failure so
    // the sender can requeue the data and fall back (RFC 8684 section 3.7);
    // a naive one silently loses the data at the meta level and the
    // transfer wedges on the never-advancing DATA_ACK.
    if (cfg_.dss_checksum) {
      ++mapping_lost_segments_;
      if (mapping_failure_fn_) {
        mapping_failure_fn_(seg.sbf_slot, seg.meta_seq,
                            MappingFailure::kStripped);
      }
    }
    return;
  }
  if (csum_bad) {
    // DSS checksum mismatch: a proxy rewrote the payload in flight. The
    // mapping itself is intact but the data under it is not trustworthy —
    // discard it and report, exactly what the checksum exists for.
    ++csum_fail_segments_;
    if (mapping_failure_fn_) {
      mapping_failure_fn_(seg.sbf_slot, seg.meta_seq,
                          MappingFailure::kChecksum);
    }
    return;
  }
  if (seg.payload_rewritten) {
    // Detection is off (or the checksum happened to be unvalidated): the
    // rewritten payload is delivered as if genuine. Count it so benches can
    // show what the naive receiver silently accepts.
    const bool first_seen =
        seg.meta_seq >= meta_expected_ && !meta_ooo_.contains(seg.meta_seq);
    if (first_seen) corrupt_delivered_bytes_ += seg.size;
  }
  meta_receive(seg);
}

void Receiver::meta_receive(const DataSegment& seg) {
  if (seg.meta_seq < meta_expected_ || meta_ooo_.contains(seg.meta_seq)) {
    // Meta-level duplicate — a redundant copy arrived on another subflow.
    // This is the D-SACK signal: a *different* transmission of data already
    // held, i.e. a redundant scheduler's extra copy burning receive memory.
    ++dup_segs_;
    ++dsack_dups_;
    return;
  }
  meta_ooo_.emplace(seg.meta_seq, seg.size);
  meta_ooo_bytes_ += seg.size;
  deliver_contiguous();
}

void Receiver::deliver_contiguous() {
  auto it = meta_ooo_.begin();
  while (it != meta_ooo_.end() && it->first == meta_expected_) {
    const std::int32_t size = it->second;
    meta_ooo_bytes_ -= size;
    delivered_bytes_ += size;
    deliveries_.push_back({sim_.now(), it->first});
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kDeliver, sim_.now(), -1, 0, size,
                   static_cast<std::int64_t>(it->first));
    }
    if (cfg_.app_read_bytes_per_sec > 0) {
      unread_bytes_ += size;
      schedule_app_read();
    }
    if (deliver_fn_) deliver_fn_(it->first, size);
    ++meta_expected_;
    it = meta_ooo_.erase(it);
  }
}

std::int64_t Receiver::rwnd_bytes() const {
  // The window is advertised from the cumulative ACK point (rcv_nxt), so
  // out-of-order data — which lies *inside* the advertised span — must not
  // shrink it; otherwise the sender could never fit the gap-filling
  // retransmission and the connection would deadlock. Only data the
  // application has not read yet reduces the window.
  return std::max<std::int64_t>(0, recv_buf_target_ - unread_bytes_);
}

void Receiver::set_recv_buf_limit(std::int64_t cap) {
  recv_buf_limit_ = std::max<std::int64_t>(0, cap);
  if (!cfg_.autotune) {
    // Static buffers track the grant exactly (the standalone value was
    // recv_buf_bytes; under a pool the grant *is* the buffer size).
    recv_buf_target_ = recv_buf_limit_;
  } else if (recv_buf_target_ > recv_buf_limit_) {
    // Autotuned targets clamp down immediately; growing back is the DRS
    // loop's job, driven by demand.
    recv_buf_target_ = recv_buf_limit_;
  }
}

void Receiver::maybe_autotune() {
  if (rtt_hint_ <= TimeNs{0}) return;  // no RTT sample yet: no epoch clock
  const TimeNs now = sim_.now();
  if (drs_epoch_start_ < TimeNs{0}) {
    drs_epoch_start_ = now;
    drs_epoch_delivered_ = delivered_bytes_;
    return;
  }
  if (now - drs_epoch_start_ < rtt_hint_) return;

  // One epoch elapsed: the classic DRS estimate is that a healthy flow
  // needs twice what it delivered in the last RTT (data in flight plus the
  // next RTT's worth arriving while the app reads).
  const std::int64_t want = 2 * (delivered_bytes_ - drs_epoch_delivered_);
  if (want > recv_buf_target_) {
    if (want > recv_buf_limit_ && mem_grant_fn_) {
      // Ask the pool for more. Its answer is authoritative in *both*
      // directions — it may also be smaller than the current limit if the
      // pool reclaimed or shed this connection since the last grant.
      recv_buf_limit_ = std::max<std::int64_t>(0, mem_grant_fn_(want));
      if (recv_buf_target_ > recv_buf_limit_) {
        recv_buf_target_ = recv_buf_limit_;
      }
    }
    const std::int64_t next = std::min(want, recv_buf_limit_);
    if (next > recv_buf_target_) {
      recv_buf_target_ = next;
      ++autotune_grows_;
    }
    drs_low_epochs_ = 0;
  } else if (want < recv_buf_target_ / 2) {
    // Demand collapsed. Require two consecutive low epochs (one could be a
    // scheduler hiccup or a loss burst), then halve at most per epoch so a
    // transient lull never slams the window shut.
    if (++drs_low_epochs_ >= 2) {
      const std::int64_t floor =
          std::min(cfg_.autotune_min_bytes, recv_buf_limit_);
      const std::int64_t next =
          std::max({want, floor, recv_buf_target_ / 2});
      if (next < recv_buf_target_) {
        recv_buf_target_ = next;
        ++autotune_shrinks_;
      }
      drs_low_epochs_ = 0;
    }
  } else {
    drs_low_epochs_ = 0;
  }
  drs_epoch_start_ = now;
  drs_epoch_delivered_ = delivered_bytes_;
}

void Receiver::schedule_app_read() {
  if (read_scheduled_ || unread_bytes_ <= 0) return;
  read_scheduled_ = true;
  // Drain in ~4KB chunks at the configured application read rate.
  const std::int64_t chunk = std::min<std::int64_t>(unread_bytes_, 4096);
  const TimeNs delay = transmission_time(chunk, cfg_.app_read_bytes_per_sec * 8);
  sim_.schedule_after(delay, [this, chunk] {
    read_scheduled_ = false;
    unread_bytes_ = std::max<std::int64_t>(0, unread_bytes_ - chunk);
    maybe_emit_window_update();
    schedule_app_read();
  });
}

void Receiver::maybe_emit_window_update() {
  const std::int64_t rwnd = rwnd_bytes();
  if (cfg_.coalesce_window_updates) {
    // SWS avoidance (RFC 9293 §3.8.6.2.2): silly little window advances are
    // swallowed; only a window opening from zero or a full-MSS gain since
    // the last advertisement is worth an update of its own.
    const bool opens_from_zero = last_advertised_rwnd_ <= 0 && rwnd > 0;
    const bool grew_an_mss = rwnd - last_advertised_rwnd_ >= cfg_.sws_mss_bytes;
    if (!opens_from_zero && !grew_an_mss) {
      ++window_updates_coalesced_;
      return;
    }
  }
  ++window_updates_emitted_;
  last_advertised_rwnd_ = rwnd;
  note_advertised(rwnd);
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kWindowUpdate, sim_.now(), -1, 0, rwnd);
  }
  if (window_update_fn_) window_update_fn_(++ack_stamp_, meta_expected_, rwnd);
}

std::optional<std::string> Receiver::audit() const {
  std::int64_t meta_bytes = 0;
  for (const auto& [seq, size] : meta_ooo_) meta_bytes += size;
  if (meta_bytes != meta_ooo_bytes_) {
    return "meta_ooo_bytes counter " + std::to_string(meta_ooo_bytes_) +
           " != recomputed " + std::to_string(meta_bytes);
  }
  std::int64_t sbf_bytes = 0;
  std::map<std::uint64_t, int> index;
  for (const SubflowRx& rx : subflows_) {
    for (const auto& [sbf_seq, seg] : rx.ooo) {
      ++index[seg.meta_seq];
      if (cfg_.model == ReceiverModel::kMultiLayer) sbf_bytes += seg.size;
    }
  }
  if (sbf_bytes != sbf_ooo_bytes_) {
    return "sbf_ooo_bytes counter " + std::to_string(sbf_ooo_bytes_) +
           " != recomputed " + std::to_string(sbf_bytes);
  }
  if (index != sbf_ooo_meta_) {
    return "has_received meta_seq index out of sync with subflow OOO queues";
  }
  if (unread_bytes_ < 0) {
    return "unread_bytes negative: " + std::to_string(unread_bytes_);
  }
  if (recv_buf_target_ > recv_buf_limit_) {
    return "recv_buf_target " + std::to_string(recv_buf_target_) +
           " above limit " + std::to_string(recv_buf_limit_);
  }
  if (cfg_.enforce_recv_buf && buffered_bytes() > mem_liability_bytes()) {
    return "receive buffer overrun: unread+ooo " +
           std::to_string(buffered_bytes()) + " > liability envelope " +
           std::to_string(mem_liability_bytes());
  }
  return std::nullopt;
}

}  // namespace progmp::mptcp
