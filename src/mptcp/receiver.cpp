#include "mptcp/receiver.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace progmp::mptcp {

AckInfo Receiver::on_data(const DataSegment& seg) {
  PROGMP_CHECK(seg.sbf_slot >= 0 && seg.sbf_slot < kMaxSubflows);
  SubflowRx& rx = subflows_[static_cast<std::size_t>(seg.sbf_slot)];

  bool first_seen = true;
  if (seg.sbf_seq < rx.expected || rx.ooo.contains(seg.sbf_seq)) {
    // Subflow-level duplicate (spurious retransmission); re-ACK.
    first_seen = false;
    ++dup_segs_;
  } else if (seg.sbf_seq == rx.expected) {
    // In subflow order: advance and drain any now-contiguous held segments.
    ++rx.expected;
    if (cfg_.model == ReceiverModel::kMultiLayer) {
      meta_receive(seg);
    }
    auto it = rx.ooo.begin();
    while (it != rx.ooo.end() && it->first == rx.expected) {
      ++rx.expected;
      if (cfg_.model == ReceiverModel::kMultiLayer) {
        sbf_ooo_bytes_ -= it->second.size;
        meta_receive(it->second);
      }
      it = rx.ooo.erase(it);
    }
  } else {
    // Subflow-level out of order: hold (multilayer keeps the data hostage
    // here; optimized only remembers the seq for ACK bookkeeping).
    rx.ooo.emplace(seg.sbf_seq, seg);
    if (cfg_.model == ReceiverModel::kMultiLayer) {
      sbf_ooo_bytes_ += seg.size;
    }
  }

  if (first_seen && cfg_.model == ReceiverModel::kOptimized) {
    // The optimized receiver hands every first-seen segment to the meta
    // layer immediately, regardless of subflow ordering.
    meta_receive(seg);
  }

  return AckInfo{seg.sbf_slot, rx.expected, meta_expected_, rwnd_bytes()};
}

void Receiver::reset_subflow(int slot) {
  PROGMP_CHECK(slot >= 0 && slot < kMaxSubflows);
  SubflowRx& rx = subflows_[static_cast<std::size_t>(slot)];
  if (cfg_.model == ReceiverModel::kMultiLayer) {
    // Segments held hostage at the subflow level die with the subflow; the
    // sender reinjects the unacked meta range elsewhere anyway.
    for (const auto& [seq, seg] : rx.ooo) sbf_ooo_bytes_ -= seg.size;
  }
  rx.ooo.clear();
  rx.expected = 0;
}

void Receiver::meta_receive(const DataSegment& seg) {
  if (seg.meta_seq < meta_expected_ || meta_ooo_.contains(seg.meta_seq)) {
    // Meta-level duplicate — a redundant copy arrived on another subflow.
    ++dup_segs_;
    return;
  }
  meta_ooo_.emplace(seg.meta_seq, seg.size);
  meta_ooo_bytes_ += seg.size;
  deliver_contiguous();
}

void Receiver::deliver_contiguous() {
  auto it = meta_ooo_.begin();
  while (it != meta_ooo_.end() && it->first == meta_expected_) {
    const std::int32_t size = it->second;
    meta_ooo_bytes_ -= size;
    delivered_bytes_ += size;
    deliveries_.push_back({sim_.now(), it->first});
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kDeliver, sim_.now(), -1, 0, size,
                   static_cast<std::int64_t>(it->first));
    }
    if (cfg_.app_read_bytes_per_sec > 0) {
      unread_bytes_ += size;
      schedule_app_read();
    }
    if (deliver_fn_) deliver_fn_(it->first, size);
    ++meta_expected_;
    it = meta_ooo_.erase(it);
  }
}

std::int64_t Receiver::rwnd_bytes() const {
  // The window is advertised from the cumulative ACK point (rcv_nxt), so
  // out-of-order data — which lies *inside* the advertised span — must not
  // shrink it; otherwise the sender could never fit the gap-filling
  // retransmission and the connection would deadlock. Only data the
  // application has not read yet reduces the window.
  return std::max<std::int64_t>(0, cfg_.recv_buf_bytes - unread_bytes_);
}

void Receiver::schedule_app_read() {
  if (read_scheduled_ || unread_bytes_ <= 0) return;
  read_scheduled_ = true;
  // Drain in ~4KB chunks at the configured application read rate.
  const std::int64_t chunk = std::min<std::int64_t>(unread_bytes_, 4096);
  const TimeNs delay = transmission_time(chunk, cfg_.app_read_bytes_per_sec * 8);
  sim_.schedule_after(delay, [this, chunk] {
    read_scheduled_ = false;
    unread_bytes_ = std::max<std::int64_t>(0, unread_bytes_ - chunk);
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kWindowUpdate, sim_.now(), -1, 0,
                   rwnd_bytes());
    }
    if (window_update_fn_) window_update_fn_(rwnd_bytes());
    schedule_app_read();
  });
}

}  // namespace progmp::mptcp
