// The scheduler abstraction: trigger events (Fig 4), the execution context
// with the environment model of §3.1 (SUBFLOWS, Q, QU, RQ), and the deferred
// action queue of §4.1.
//
// Both the native ("C") reference schedulers and the three ProgMP execution
// environments program against SchedulerContext, so overhead comparisons
// (Fig 9) measure exactly the runtime difference.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/time.hpp"
#include "core/trace.hpp"
#include "mptcp/packet_queue.hpp"
#include "mptcp/skb.hpp"

namespace progmp::mptcp {

/// Why the scheduler is being executed (the calling model of Fig 4).
enum class TriggerKind {
  kDataPushed,      ///< new packets arrived in Q from the application
  kAck,             ///< a (subflow or data) ACK arrived
  kRto,             ///< a retransmission timer fired
  kReinject,        ///< a suspected loss queued a packet into RQ
  kSubflowAdded,    ///< path manager established a new subflow
  kSubflowClosed,   ///< a subflow closed or failed
  kRegisterSet,     ///< the application changed a scheduler register
  kTsqFreed,        ///< TSQ budget freed (packet left the local qdisc)
  kWindowUpdate,    ///< the receiver reopened its window
  kConnStall,       ///< the watchdog declared a meta-level stall and wants
                    ///< the scheduler to look at the queues again
  kRwndLimited,     ///< the sender is blocked on a zero receive window with
                    ///< nothing in flight (§3.4's rwnd-limited signal); the
                    ///< persist timer starts probing
  kMemPressure,     ///< the host's receive-memory pool is under pressure
                    ///< (exhausted or shedding); redundant schedulers should
                    ///< back off — every duplicate copy they send lands in a
                    ///< buffer the pool can no longer grow
  kFallback,        ///< middlebox interference forced an RFC 8684-style
                    ///< fallback to single-path operation; the subflow slot
                    ///< is the elected survivor. The installed spec keeps
                    ///< running but sees exactly one established subflow
                    ///< from here on (R93 reads the fallback state).
};

struct Trigger {
  TriggerKind kind = TriggerKind::kDataPushed;
  int subflow_slot = -1;  ///< originating subflow where applicable
};

/// Read-only snapshot of one subflow's properties, refreshed before every
/// scheduler execution. These are exactly the DSL's subflow properties
/// (Table 1) plus the derived rate signals used by TAP (§5.4).
struct SubflowInfo {
  int slot = -1;            ///< stable index into the connection's slot table
  std::string name;         ///< e.g. "wifi", "lte"
  bool is_backup = false;
  bool preferred = true;  ///< application preference (cheap vs metered path)
  bool established = false;
  bool tsq_throttled = false;
  bool lossy = false;       ///< in loss recovery (fast recovery or post-RTO)
  std::int64_t cwnd = 0;             ///< congestion window (segments)
  std::int64_t skbs_in_flight = 0;   ///< transmitted, unacked (segments)
  std::int64_t queued = 0;           ///< scheduled, not yet transmitted
  TimeNs rtt{0};        ///< smoothed RTT
  TimeNs rtt_var{0};
  TimeNs min_rtt{0};
  TimeNs last_rtt{0};
  std::int64_t mss = 0;
  double delivery_rate_bps = 0.0;  ///< observed goodput, bytes/sec
  double capacity_bps = 0.0;       ///< cwnd * mss / srtt, bytes/sec
  TimeNs established_at{0};
  TimeNs last_tx_at{0};

  /// The default scheduler's availability test: room in the congestion
  /// window, not throttled, not in loss recovery.
  [[nodiscard]] bool cwnd_free() const {
    return cwnd > skbs_in_flight + queued;
  }
};

// QueueId lives in mptcp/packet_queue.hpp (re-exported by the include
// above): the queue layer owns the id -> queue mapping.

// ---- Environment-maintained registers ---------------------------------------
// The top of the R1..R99 register file is reserved for values the runtime
// maintains on the connection's behalf — specs read them like any register
// (e.g. `IF R92 > R1 THEN ...`), writes to them are silently ignored. The
// per-connection register file itself stays <= 64 entries (enforced by
// MptcpConnection), so the overlay can never collide with an
// application-owned register.

/// R91: receive-memory pressure level of the owning host's pool (0 = no
/// pressure; otherwise the episode count of the current pressure period).
inline constexpr int kEnvRegMemPressure = 90;
/// R92: the receiver's D-SACK-style duplicate count — segments that arrived
/// as redundant copies of already-received meta data. A redundant scheduler
/// watching this register sees exactly how many of its copies were wasted.
inline constexpr int kEnvRegDsackDups = 91;
/// R93: the connection's RFC 8684 fallback state (0 = native multipath,
/// 1 = fallback transition in progress, 2 = pinned to single-path
/// operation after middlebox interference). A spec can stop scheduling
/// redundancy, flip strategies or surface the degradation to the app.
inline constexpr int kEnvRegFallback = 92;
/// R94: the quarantine state of this connection's installed program
/// (0 = active, 1 = quarantined — the default scheduler is standing in,
/// 2 = probation — reinstated, but the next fault re-quarantines). A spec
/// that reads 2 knows it is on its last chance and can throttle whatever
/// made it fault; co-hosted specs read 0 throughout.
inline constexpr int kEnvRegQuarantine = 93;

/// Snapshot of the environment-register values, refreshed by the engine
/// before every scheduler execution.
struct EnvSignals {
  std::int64_t mem_pressure = 0;  ///< served as R91
  std::int64_t dsack_dups = 0;    ///< served as R92
  std::int64_t fallback = 0;      ///< served as R93
  std::int64_t quarantine = 0;    ///< served as R94
};

// ---- Runtime faults ---------------------------------------------------------

/// Structured classification of scheduler-program runtime faults. The kinds
/// are stable identifiers: fault scoring (api::SpecQuarantine), metrics
/// labels, and the kSchedFault trace payload key on the enum value, never on
/// a rendered string — and the fault hot path allocates nothing.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kBudgetExhausted,  ///< per-execution instruction budget exhausted
  kPcViolation,      ///< program counter left the program
  kStackViolation,   ///< stack load/store outside the frame
  kHelperViolation,  ///< helper called with an argument the verifier should
                     ///< have ruled out (defense-in-depth VM check)
  kOther,            ///< execution environment reported an unclassified fault
};

/// Stable short name for metrics labels and proc lines ("budget", "pc", ...).
const char* fault_kind_name(FaultKind kind);

/// Statistics the runtime keeps per scheduler instance (exposed through the
/// proc-style API, §4.1).
struct SchedulerStats {
  std::int64_t executions = 0;
  std::int64_t pushes = 0;
  std::int64_t redundant_pushes = 0;  ///< pushes of already-sent packets
  std::int64_t null_pushes = 0;       ///< graceful no-ops (NULL packet/subflow)
  std::int64_t drops = 0;
  std::int64_t pops = 0;
  /// Times the engine hit the per-trigger execution bound and abandoned the
  /// re-posted push-until-blocked continuation of a trigger.
  std::int64_t trigger_drops = 0;
  /// Scheduler-program runtime faults (instruction-budget exhaustion, PC or
  /// stack violations). Each one is rolled back and replaced by a run of the
  /// built-in default scheduler — graceful failure (§3.3).
  std::int64_t sched_faults = 0;
};

/// Execution context handed to the scheduler. Exposes immutable snapshots of
/// the subflows and live views of the three queues; PUSH side effects are
/// collected into a deferred action queue applied by the engine afterwards,
/// while POP mutates the underlying queue immediately (visible side effect
/// semantics of §4.1).
class SchedulerContext {
 public:
  /// One deferred PUSH action.
  struct PushAction {
    int subflow_slot;
    SkbPtr skb;
  };

  SchedulerContext(TimeNs now, Trigger trigger,
                   std::span<const SubflowInfo> subflows, QueueBundle* queues,
                   std::int64_t* registers, int num_registers,
                   std::int64_t rwnd_free_bytes, SchedulerStats* stats,
                   Tracer* trace = nullptr,
                   std::uint64_t below_edge_bytes = 0)
      : now_(now),
        trigger_(trigger),
        subflows_(subflows),
        queues_(queues),
        registers_(registers),
        num_registers_(num_registers),
        rwnd_free_bytes_(rwnd_free_bytes),
        below_edge_bytes_(below_edge_bytes),
        stats_(stats),
        trace_(trace) {}

  /// Re-arms a long-lived context for the next execution: fresh trigger
  /// snapshot, cleared action/undo logs. The engine keeps one context per
  /// connection so the per-execution log capacity is reused instead of
  /// reallocated on every trigger.
  void reset(TimeNs now, Trigger trigger,
             std::span<const SubflowInfo> subflows,
             std::int64_t rwnd_free_bytes, std::uint64_t below_edge_bytes = 0) {
    now_ = now;
    trigger_ = trigger;
    subflows_ = subflows;
    rwnd_free_bytes_ = rwnd_free_bytes;
    below_edge_bytes_ = below_edge_bytes;
    actions_.clear();
    pop_log_.clear();
    drop_log_.clear();
    dropped_ = false;
    popped_ = false;
    faulted_ = false;
    fault_kind_ = FaultKind::kNone;
    exec_backend_ = "unknown";
    exec_insns_ = 0;
  }

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] const Trigger& trigger() const { return trigger_; }

  // ---- Subflows -----------------------------------------------------------
  [[nodiscard]] std::span<const SubflowInfo> subflows() const {
    return subflows_;
  }

  // ---- Queues -------------------------------------------------------------
  [[nodiscard]] const PacketQueue& queue(QueueId id) const {
    return queues_->get(id);
  }

  /// Removes and returns the packet at `index` of the given queue (the
  /// augmented queue allows POPs from the middle, §4.1). Returns nullptr if
  /// out of range.
  SkbPtr pop_at(QueueId id, std::size_t index);

  /// POP of the queue front; nullptr when empty.
  SkbPtr pop(QueueId id) { return pop_at(id, 0); }

  // ---- Actions ------------------------------------------------------------
  /// Defers a PUSH of `skb` onto the subflow in `slot`. NULL skb or invalid
  /// slot is a counted no-op — graceful failure by design (§3.3).
  void push(int slot, const SkbPtr& skb);

  /// Removes the packet from all queues without transmitting it.
  void drop(const SkbPtr& skb);

  [[nodiscard]] const std::vector<PushAction>& actions() const {
    return actions_;
  }
  [[nodiscard]] bool performed_action() const {
    return !actions_.empty() || dropped_ || popped_;
  }

  // ---- Registers ----------------------------------------------------------
  [[nodiscard]] std::int64_t reg(int i) const {
    if (i == kEnvRegMemPressure) return env_.mem_pressure;
    if (i == kEnvRegDsackDups) return env_.dsack_dups;
    if (i == kEnvRegFallback) return env_.fallback;
    if (i == kEnvRegQuarantine) return env_.quarantine;
    return (i >= 0 && i < num_registers_) ? registers_[i] : 0;
  }
  void set_reg(int i, std::int64_t v) {
    if (i == kEnvRegMemPressure || i == kEnvRegDsackDups ||
        i == kEnvRegFallback || i == kEnvRegQuarantine) {
      return;
    }
    if (i >= 0 && i < num_registers_) registers_[i] = v;
  }
  [[nodiscard]] int num_registers() const { return num_registers_; }

  /// Installs the environment-register snapshot (R91–R94) for this
  /// execution; the engine refreshes it before every scheduler run.
  void set_env_signals(const EnvSignals& env) { env_ = env; }

  // ---- Misc ---------------------------------------------------------------
  /// Whether the receiver's advertised window can accommodate `skb`
  /// (HAS_WINDOW_FOR, §3.3). Window accounting is at the meta level, so the
  /// subflow argument of the DSL call does not change the outcome here.
  /// A packet entirely below the transmitted right edge is a retransmission
  /// and always fits, exactly like plain TCP (and like the engine's own
  /// transmit gate) — a fallback harvest returns such packets to Q, and the
  /// fresh-data budget must not wedge them. The engine only arms the
  /// exemption (below_edge_bytes > 0) with the fallback machinery enabled.
  [[nodiscard]] bool has_window_for(const SkbPtr& skb) const {
    if (skb == nullptr) return false;
    if (skb->byte_offset + static_cast<std::uint64_t>(skb->size) <=
        below_edge_bytes_) {
      return true;
    }
    return skb->size <= rwnd_free_bytes_;
  }

  [[nodiscard]] SchedulerStats& stats() { return *stats_; }
  [[nodiscard]] Tracer* tracer() const { return trace_; }

  /// Execution-cost report from the runtime: which environment ran this
  /// execution and how many instructions/steps it retired. The engine folds
  /// it into the sched_exec_end trace event and the metrics histograms.
  void note_exec(const char* backend, std::int64_t insns) {
    exec_backend_ = backend;
    exec_insns_ = insns;
  }
  [[nodiscard]] const char* exec_backend() const { return exec_backend_; }
  [[nodiscard]] std::int64_t exec_insns() const { return exec_insns_; }

  // ---- Runtime faults -----------------------------------------------------
  /// Reported by a ProgMP execution environment when the program died at
  /// runtime (budget exhaustion, PC/stack violation). The engine rolls the
  /// execution's effects back and substitutes the default scheduler.
  void note_fault(FaultKind kind) {
    faulted_ = true;
    fault_kind_ = kind;
  }
  [[nodiscard]] bool faulted() const { return faulted_; }
  [[nodiscard]] FaultKind fault_kind() const { return fault_kind_; }

  /// Undoes every visible side effect of this execution: popped packets
  /// return to the front of their queues (flags restored), dropped packets
  /// are un-dropped and re-attached, and the deferred PUSH actions are
  /// discarded. Afterwards the context is clean for a fallback run.
  void rollback();

 private:
  TimeNs now_;
  Trigger trigger_;
  std::span<const SubflowInfo> subflows_;
  QueueBundle* queues_;
  std::int64_t* registers_;
  int num_registers_;
  EnvSignals env_;
  std::int64_t rwnd_free_bytes_;
  std::uint64_t below_edge_bytes_ = 0;
  SchedulerStats* stats_;
  Tracer* trace_;

  std::vector<PushAction> actions_;
  bool dropped_ = false;
  bool popped_ = false;
  const char* exec_backend_ = "unknown";
  std::int64_t exec_insns_ = 0;

  bool faulted_ = false;
  FaultKind fault_kind_ = FaultKind::kNone;

  /// Undo logs for rollback(), in action order.
  struct PopRecord {
    QueueId id;
    SkbPtr skb;
  };
  struct DropRecord {
    SkbPtr skb;
    bool was_in_q, was_in_qu, was_in_rq;
  };
  std::vector<PopRecord> pop_log_;
  std::vector<DropRecord> drop_log_;
};

/// The built-in default scheduler (MinRTT with backup semantics), callable on
/// a bare context: reinjections first on the lowest-RTT available non-backup
/// subflow that has not carried the packet, then fresh data on the lowest-RTT
/// available subflow; backup subflows only while no non-backup subflow is
/// established. Shared by sched::make_native_minrtt() and the engine's
/// scheduler-fault fallback, so both are one implementation.
void run_default_minrtt(SchedulerContext& ctx);

/// A scheduler: one execution per trigger, reading and acting through the
/// context. Implementations: native C++ schedulers (sched/native.hpp) and
/// the ProgMP program runner (runtime/program.hpp).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Executes one scheduling round.
  virtual void schedule(SchedulerContext& ctx) = 0;

  /// Human-readable identifier (for stats and bench tables).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace progmp::mptcp
