// Flat queue layer for the meta-level queues (Q, QU, RQ) and the
// per-subflow send queues.
//
// The programming model makes the queues first-class objects that scheduler
// specifications scan on every trigger (FILTER/MIN/MAX/COUNT chains, §3.1),
// so at fleet scale the queue representation *is* the hot path. PacketQueue
// keeps a contiguous power-of-two ring of small entries that carry the hot
// Skb fields (meta_seq, size, flow_end, sent-on summary) next to the owning
// SkbPtr, so chain scans walk sequential memory instead of chasing
// shared_ptr control blocks, and it maintains aggregates (byte total,
// min/max meta_seq, flag counts) incrementally so constant-time properties
// (Q.SIZE, byte totals) never cost an O(n) walk.
//
// Tracked mode — the connection's Q/QU/RQ — additionally maintains the
// intrusive membership index inside Skb: the membership flag plus the
// packet's physical ring slot (Skb::queue_pos). Membership tests and
// mid-queue removal (detach on data-level ACK, DROP) locate the entry in
// O(1) instead of a linear std::find. Untracked mode (per-subflow queues,
// where one skb may sit in several queues of the same kind) skips the
// intrusive index and falls back to linear erase.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "mptcp/skb.hpp"

namespace progmp::mptcp {

/// The three meta-level queues of §3.1. Doubles as the index into the
/// intrusive membership state in Skb (flag + ring slot).
enum class QueueId { kQ = 0, kQu = 1, kRq = 2 };

class PacketQueue {
 public:
  /// One ring slot: the owning reference plus a POD mirror of the hot Skb
  /// fields. meta_seq/size/flow_end are immutable while a packet is queued;
  /// sent_mask mutates (PUSH marks, subflow-death clears) and is re-synced
  /// through refresh_sent_mask() by the owning connection.
  struct Entry {
    SkbPtr skb;
    std::uint64_t meta_seq = 0;
    std::int32_t size = 0;
    std::uint32_t sent_mask = 0;
    bool flow_end = false;
  };

  /// Untracked queue (per-subflow send queues): no intrusive index.
  PacketQueue() = default;
  /// Tracked queue: maintains the Skb membership flag and ring-slot index
  /// for `id`. Exactly one tracked queue per QueueId may hold a given skb.
  explicit PacketQueue(QueueId id) : index_(static_cast<int>(id)) {}

  PacketQueue(const PacketQueue&) = delete;
  PacketQueue& operator=(const PacketQueue&) = delete;

  // ---- Size & aggregates (all O(1); min/max amortized) ---------------------
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Sum of payload bytes over all entries.
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  /// Entries whose packet carries the application's end-of-flow signal.
  [[nodiscard]] std::int64_t flow_end_count() const { return flow_end_count_; }
  /// Entries already scheduled on at least one subflow (sent_mask != 0).
  [[nodiscard]] std::int64_t sent_count() const { return sent_count_; }
  /// Smallest/largest meta_seq currently queued; 0 when empty. Removal of
  /// the current extremum marks the cache dirty, the next read recomputes.
  [[nodiscard]] std::uint64_t min_meta_seq() const;
  [[nodiscard]] std::uint64_t max_meta_seq() const;

  // ---- Element access ------------------------------------------------------
  [[nodiscard]] const Entry& at(std::size_t i) const {
    PROGMP_CHECK(i < size_);
    return ring_[slot_of(i)];
  }
  [[nodiscard]] const SkbPtr& skb_at(std::size_t i) const { return at(i).skb; }
  [[nodiscard]] const SkbPtr& front() const { return at(0).skb; }
  [[nodiscard]] const Entry& front_entry() const { return at(0); }

  // ---- Mutation ------------------------------------------------------------
  /// Appends `skb`. Tracked mode stamps the membership flag + ring slot (the
  /// skb must not already be a member of this queue).
  void push_back(const SkbPtr& skb);
  /// Prepends `skb` (rollback restore, window-blocked hand-back).
  void push_front(const SkbPtr& skb);
  /// Removes and returns the front packet; nullptr when empty. Tracked mode
  /// clears the membership flag.
  SkbPtr pop_front();
  /// Removes and returns the packet at logical `index` (the augmented queue
  /// allows POPs from the middle, §4.1); nullptr when out of range. The
  /// shorter side of the ring shifts by one slot.
  SkbPtr pop_at(std::size_t index);
  /// Removes the entry owning `skb`. O(1) in tracked mode (intrusive index),
  /// linear in untracked mode. Returns false when not a member.
  bool erase(const Skb* skb);
  /// Membership test: O(1) (flag) in tracked mode, linear otherwise.
  [[nodiscard]] bool contains(const Skb* skb) const;
  /// Drops all entries (clearing membership flags in tracked mode).
  void clear();

  /// Re-syncs the cached sent_mask of `skb`'s entry after the live mask
  /// changed (PUSH marked a subflow, a subflow death cleared its bit).
  /// Tracked mode only; no-op when the skb is not a member.
  void refresh_sent_mask(const Skb* skb);

  // ---- Iteration (forward, logical order, const) ---------------------------
  class const_iterator {
   public:
    const_iterator(const PacketQueue* q, std::size_t pos) : q_(q), pos_(pos) {}
    const Entry& operator*() const { return q_->at(pos_); }
    const Entry* operator->() const { return &q_->at(pos_); }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }

   private:
    const PacketQueue* q_;
    std::size_t pos_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }

  /// Stable cursor for scan-and-remove passes. The cursor walks logical
  /// positions; erase_here() removes the current entry and leaves the cursor
  /// on its successor. Any queue mutation *not* made through the cursor
  /// (push, pop, erase, clear) invalidates it.
  class Cursor {
   public:
    explicit Cursor(PacketQueue& q) : q_(&q) {}
    [[nodiscard]] bool valid() const { return pos_ < q_->size(); }
    [[nodiscard]] const Entry& entry() const { return q_->at(pos_); }
    void next() { ++pos_; }
    /// Removes the current entry; the cursor stays at the same logical
    /// position, which now names the removed entry's successor.
    SkbPtr erase_here() { return q_->pop_at(pos_); }

   private:
    PacketQueue* q_;
    std::size_t pos_ = 0;
  };
  [[nodiscard]] Cursor cursor() { return Cursor(*this); }

  // ---- Self-audit (invariant checker) --------------------------------------
  /// Full internal consistency check: every entry's POD mirror matches its
  /// skb, the intrusive index round-trips (flag set, stored slot maps back
  /// to the entry — which also proves the queue is duplicate-free), and the
  /// cached aggregates equal a from-scratch recompute. Returns a diagnostic
  /// on the first inconsistency, std::nullopt when clean.
  [[nodiscard]] std::optional<std::string> audit() const;

 private:
  [[nodiscard]] std::size_t slot_of(std::size_t logical) const {
    return (head_ + logical) & mask_;
  }
  [[nodiscard]] bool tracked() const { return index_ >= 0; }
  [[nodiscard]] bool Skb::* member_flag() const;

  /// Fills ring_[slot] from `skb` and stamps the intrusive index (tracked).
  void place(std::size_t slot, const SkbPtr& skb);
  /// Moves the entry in `from` to `to`, restamping the intrusive index.
  void move_entry(std::size_t from, std::size_t to);
  void add_aggregates(const Entry& e);
  void sub_aggregates(const Entry& e);
  void recompute_minmax() const;
  /// Doubles the ring (min 16 slots), re-linearizing with head_ = 0.
  void grow();

  std::vector<Entry> ring_;  ///< power-of-two capacity (empty until first use)
  std::size_t mask_ = 0;     ///< ring_.size() - 1
  std::size_t head_ = 0;     ///< physical slot of logical index 0
  std::size_t size_ = 0;
  int index_ = -1;  ///< QueueId for tracked mode; -1 = untracked

  std::int64_t bytes_ = 0;
  std::int64_t flow_end_count_ = 0;
  std::int64_t sent_count_ = 0;
  // min/max are lazy: removals of the extremum only mark the cache dirty,
  // so hot-path pops stay O(1) and the recompute cost lands on the (rare)
  // aggregate reader.
  mutable std::uint64_t min_seq_ = 0;
  mutable std::uint64_t max_seq_ = 0;
  mutable bool minmax_dirty_ = false;
};

/// The connection's three meta-level queues as one object — the single
/// spelling of the QueueId -> queue mapping (previously duplicated across
/// connection.hpp, scheduler.hpp and scheduler.cpp).
struct QueueBundle {
  PacketQueue q{QueueId::kQ};
  PacketQueue qu{QueueId::kQu};
  PacketQueue rq{QueueId::kRq};

  [[nodiscard]] PacketQueue& get(QueueId id) {
    switch (id) {
      case QueueId::kQ:
        return q;
      case QueueId::kQu:
        return qu;
      case QueueId::kRq:
        return rq;
    }
    PROGMP_UNREACHABLE("bad queue id");
  }
  [[nodiscard]] const PacketQueue& get(QueueId id) const {
    return const_cast<QueueBundle*>(this)->get(id);
  }

  /// Removes `skb` from every queue it is a member of (flags cleared).
  void detach(const Skb* skb) {
    q.erase(skb);
    qu.erase(skb);
    rq.erase(skb);
  }

  /// Re-syncs the cached sent-on summary in every queue holding `skb`.
  void refresh_sent_mask(const Skb* skb) {
    q.refresh_sent_mask(skb);
    qu.refresh_sent_mask(skb);
    rq.refresh_sent_mask(skb);
  }
};

}  // namespace progmp::mptcp
