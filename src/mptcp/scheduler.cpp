#include "mptcp/scheduler.hpp"

#include <algorithm>

namespace progmp::mptcp {
namespace {

std::deque<SkbPtr>* mutable_queue(std::deque<SkbPtr>* q, std::deque<SkbPtr>* qu,
                                  std::deque<SkbPtr>* rq, QueueId id) {
  switch (id) {
    case QueueId::kQ:
      return q;
    case QueueId::kQu:
      return qu;
    case QueueId::kRq:
      return rq;
  }
  PROGMP_UNREACHABLE("bad queue id");
}

}  // namespace

SkbPtr SchedulerContext::pop_at(QueueId id, std::size_t index) {
  std::deque<SkbPtr>* queue = mutable_queue(q_, qu_, rq_, id);
  if (index >= queue->size()) return nullptr;
  SkbPtr skb = (*queue)[index];
  queue->erase(queue->begin() + static_cast<std::ptrdiff_t>(index));
  switch (id) {
    case QueueId::kQ:
      skb->in_q = false;
      break;
    case QueueId::kQu:
      skb->in_qu = false;
      break;
    case QueueId::kRq:
      skb->in_rq = false;
      break;
  }
  popped_ = true;
  ++stats_->pops;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kPop, now_, -1, static_cast<std::int32_t>(id),
                 skb->size, static_cast<std::int64_t>(skb->meta_seq));
  }
  return skb;
}

void SchedulerContext::push(int slot, const SkbPtr& skb) {
  const bool slot_ok =
      slot >= 0 && slot < static_cast<int>(subflows_.size()) &&
      subflows_[static_cast<std::size_t>(slot)].established;
  if (skb == nullptr || skb->acked || skb->dropped || !slot_ok) {
    ++stats_->null_pushes;
    return;
  }
  if (skb->sent_on(slot)) {
    // Scheduling the same packet on the same subflow twice within/across
    // executions is almost always a spec bug for fresh data — but it is the
    // defined way to request a (re)transmission of an in-flight packet, so
    // the engine decides; here we only count it.
    ++stats_->redundant_pushes;
  }
  actions_.push_back({slot, skb});
  ++stats_->pushes;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kPush, now_, slot, 0, skb->size,
                 static_cast<std::int64_t>(skb->meta_seq));
  }
}

void SchedulerContext::drop(const SkbPtr& skb) {
  if (skb == nullptr || skb->acked || skb->dropped) {
    return;
  }
  skb->dropped = true;
  detach_from_all_queues(skb);
  dropped_ = true;
  ++stats_->drops;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kDrop, now_, -1, 0, skb->size,
                 static_cast<std::int64_t>(skb->meta_seq));
  }
}

void SchedulerContext::detach_from_all_queues(const SkbPtr& skb) {
  auto detach = [&](std::deque<SkbPtr>* queue, bool Skb::* flag) {
    if (!(skb.get()->*flag)) return;
    auto it = std::find(queue->begin(), queue->end(), skb);
    if (it != queue->end()) queue->erase(it);
    skb.get()->*flag = false;
  };
  detach(q_, &Skb::in_q);
  detach(qu_, &Skb::in_qu);
  detach(rq_, &Skb::in_rq);
}

}  // namespace progmp::mptcp
