#include "mptcp/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace progmp::mptcp {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kBudgetExhausted:
      return "budget";
    case FaultKind::kPcViolation:
      return "pc";
    case FaultKind::kStackViolation:
      return "stack";
    case FaultKind::kHelperViolation:
      return "helper";
    case FaultKind::kOther:
      return "other";
  }
  return "?";
}

SkbPtr SchedulerContext::pop_at(QueueId id, std::size_t index) {
  // The bundle's get() is the single spelling of the QueueId -> queue
  // mapping; the queue itself clears the membership flag on removal.
  SkbPtr skb = queues_->get(id).pop_at(index);
  if (skb == nullptr) return nullptr;
  popped_ = true;
  pop_log_.push_back({id, skb});
  ++stats_->pops;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kPop, now_, -1, static_cast<std::int32_t>(id),
                 skb->size, static_cast<std::int64_t>(skb->meta_seq));
  }
  return skb;
}

void SchedulerContext::push(int slot, const SkbPtr& skb) {
  const bool slot_ok =
      slot >= 0 && slot < static_cast<int>(subflows_.size()) &&
      subflows_[static_cast<std::size_t>(slot)].established;
  if (skb == nullptr || skb->acked || skb->dropped || !slot_ok) {
    ++stats_->null_pushes;
    return;
  }
  if (skb->sent_on(slot)) {
    // Scheduling the same packet on the same subflow twice within/across
    // executions is almost always a spec bug for fresh data — but it is the
    // defined way to request a (re)transmission of an in-flight packet, so
    // the engine decides; here we only count it.
    ++stats_->redundant_pushes;
  }
  actions_.push_back({slot, skb});
  ++stats_->pushes;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kPush, now_, slot, 0, skb->size,
                 static_cast<std::int64_t>(skb->meta_seq));
  }
}

void SchedulerContext::drop(const SkbPtr& skb) {
  if (skb == nullptr || skb->acked || skb->dropped) {
    return;
  }
  drop_log_.push_back({skb, skb->in_q, skb->in_qu, skb->in_rq});
  skb->dropped = true;
  queues_->detach(skb.get());
  dropped_ = true;
  ++stats_->drops;
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kDrop, now_, -1, 0, skb->size,
                 static_cast<std::int64_t>(skb->meta_seq));
  }
}

void SchedulerContext::rollback() {
  // Newest effect first, so interleaved pop/drop sequences unwind cleanly
  // (a packet popped and then dropped regains both its membership sets).
  for (auto it = drop_log_.rbegin(); it != drop_log_.rend(); ++it) {
    it->skb->dropped = false;
    // push_front restores the membership flag (tracked queue semantics).
    if (it->was_in_q && !it->skb->in_q) queues_->q.push_front(it->skb);
    if (it->was_in_qu && !it->skb->in_qu) queues_->qu.push_front(it->skb);
    if (it->was_in_rq && !it->skb->in_rq) queues_->rq.push_front(it->skb);
  }
  for (auto it = pop_log_.rbegin(); it != pop_log_.rend(); ++it) {
    if (it->skb->acked || it->skb->dropped) continue;
    queues_->get(it->id).push_front(it->skb);
  }
  drop_log_.clear();
  pop_log_.clear();
  actions_.clear();
  dropped_ = false;
  popped_ = false;
}

namespace {

/// Usable for fresh data: established, not throttled, not in loss state,
/// with congestion window room.
bool minrtt_available(const SubflowInfo& s) {
  return s.established && !s.tsq_throttled && !s.lossy && s.cwnd_free();
}

/// Lowest-RTT subflow among those satisfying `pred`; -1 if none.
template <typename Pred>
int min_rtt_slot(SchedulerContext& ctx, Pred&& pred) {
  int best = -1;
  TimeNs best_rtt{std::numeric_limits<std::int64_t>::max()};
  for (const SubflowInfo& s : ctx.subflows()) {
    if (!pred(s)) continue;
    if (s.rtt < best_rtt) {
      best_rtt = s.rtt;
      best = s.slot;
    }
  }
  return best;
}

}  // namespace

void run_default_minrtt(SchedulerContext& ctx) {
  // Backup subflows carry data only while no non-backup subflow exists at
  // all (Linux backup semantics) — including reinjections: when every
  // regular subflow failed, the stranded packets must be allowed onto the
  // backups or the connection wedges at the meta-level gap.
  bool non_backup_exists = false;
  for (const SubflowInfo& s : ctx.subflows()) {
    if (s.established && !s.is_backup) non_backup_exists = true;
  }
  auto backup_ok = [&](const SubflowInfo& s) {
    return non_backup_exists ? !s.is_backup : true;
  };

  // Reinjections first: place the suspected-lost packet on an available
  // subflow that has not carried it.
  if (!ctx.queue(QueueId::kRq).empty()) {
    const SkbPtr& head = ctx.queue(QueueId::kRq).front();
    int slot = min_rtt_slot(ctx, [&](const SubflowInfo& s) {
      return minrtt_available(s) && backup_ok(s) && !head->sent_on(s.slot);
    });
    // The fresh-path preference must not become a permanent bar: a packet
    // every eligible subflow has already carried (e.g. an orphan of a
    // subflow that died and was later revived, with the other path in
    // backup standby) is still retransmittable on the same path — plain
    // TCP does exactly that — or the RQ head wedges the connection.
    if (slot < 0) {
      slot = min_rtt_slot(ctx, [&](const SubflowInfo& s) {
        return minrtt_available(s) && backup_ok(s);
      });
    }
    if (slot >= 0) {
      ctx.push(slot, ctx.pop(QueueId::kRq));
    }
  }
  if (ctx.queue(QueueId::kQ).empty()) return;
  // Fresh data must fit the free receive window (reinjections above go
  // below the transmitted right edge and are exempt). Without this gate a
  // push of beyond-window data just bounces off the subflow's transmit
  // gate and back into Q, spinning the engine's push-until-blocked loop.
  if (!ctx.has_window_for(ctx.queue(QueueId::kQ).front())) return;

  const int slot = min_rtt_slot(ctx, [&](const SubflowInfo& s) {
    return minrtt_available(s) && backup_ok(s);
  });
  if (slot >= 0) {
    ctx.push(slot, ctx.pop(QueueId::kQ));
  }
}

}  // namespace progmp::mptcp
