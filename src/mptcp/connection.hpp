// The MPTCP connection: meta socket, scheduler engine and path management.
//
// Owns the three meta-level queues (Q, QU, RQ), the subflows with their
// network paths, the receiver model, the scheduler registers, and the
// trigger loop of Fig 4: every relevant event (data pushed, ACK, RTO,
// reinjection, subflow lifecycle, register writes, freed TSQ budget) runs
// the installed scheduler; executions that performed actions are repeated
// until the scheduler blocks (bounded), matching the kernel's
// push-until-blocked behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "core/trace.hpp"
#include "mptcp/receiver.hpp"
#include "mptcp/scheduler.hpp"
#include "mptcp/skb.hpp"
#include "mptcp/subflow.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/congestion.hpp"

namespace progmp::mptcp {

class PathHealthMonitor;

enum class CcKind { kReno, kLia, kCubic };

/// RFC 8684 §3.7-shaped fallback lifecycle (served to specs as R93).
/// Native: full multipath operation. FallbackPending: interference was
/// detected and the connection is mid-transition (abandoning subflows,
/// harvesting their in-flight data). SinglePath: pinned to the elected
/// survivor — abandoned subflows are closed for good, new subflow joins are
/// refused, and the installed spec keeps running against a one-subflow set.
enum class FallbackState : int {
  kNative = 0,
  kFallbackPending = 1,
  kSinglePath = 2,
};

class MptcpConnection {
 public:
  /// Everything needed to bring up one subflow and its network path. Two
  /// binding modes:
  ///  * `path_id` empty (default): the connection creates a private NetPath
  ///    from `forward`/`reverse` — the original single-tenant behaviour,
  ///    bit-identical at the same seed.
  ///  * `path_id` set: the subflow binds to the named shared path of
  ///    Config::network; `forward`/`reverse` are ignored and the subflow
  ///    contends with every other flow on that path's links.
  struct SubflowSpec {
    SubflowSender::Config sender;
    sim::Link::Config forward;   ///< data direction (private-path mode)
    sim::Link::Config reverse;   ///< ACK direction (private-path mode)
    std::string path_id;         ///< shared path reference (shared mode)
  };

  struct Config {
    std::vector<SubflowSpec> subflows;
    Receiver::Config receiver;
    CcKind cc = CcKind::kReno;
    int num_registers = 8;
    /// Shared topology for subflow specs that reference a path by id.
    /// Must outlive the connection; may stay null when every spec inlines a
    /// private link pair (the single-tenant default).
    sim::Network* network = nullptr;
    /// Identity of this connection inside a multi-connection host: stamped
    /// onto every trace event and exported metric series (-1 = untagged).
    int conn_id = -1;
    /// Weight in the host receive-memory pool's fair-share and shed
    /// decisions (higher = larger share, shed later). Ignored standalone.
    int recv_priority = 1;
    /// Bound on scheduler executions per external trigger (defensive cap on
    /// the push-until-blocked loop). Generous: schedulers that compensate
    /// whole flights (§5.3) legitimately act many times per trigger.
    int max_executions_per_trigger = 512;
    /// Records every engine/subflow/receiver event into the connection
    /// tracer. Off by default: emission is a single branch per event site.
    bool trace_enabled = false;
    /// Ring capacity of the tracer (events kept; older ones overwritten).
    std::size_t trace_capacity = Tracer::kDefaultCapacity;

    // ---- Resilience ---------------------------------------------------------
    /// Connection-wide default for SubflowSender::Config::rto_death_threshold
    /// (applied to subflows whose spec leaves it at 0). 0 disables death
    /// detection — the seed behaviour, bit-identical at the same seed.
    int rto_death_threshold = 0;
    /// Revive a failed subflow when its forward (data) link comes back up.
    /// Only engages after a failure, so it cannot change fault-free runs.
    bool revive_on_restore = true;
    /// Revival hysteresis for flapping paths: the restored link must stay up
    /// this long before revive_on_restore re-admits the subflow; another
    /// down-transition inside the window cancels the pending revival. 0 (the
    /// seed default) trusts the first up-transition immediately.
    TimeNs revival_min_uptime{0};
    /// When a scheduler program faults at runtime (budget exhaustion, VM
    /// error), roll its effects back and run the built-in default scheduler
    /// for that trigger instead of silently doing nothing.
    bool sched_fault_fallback = true;

    // ---- Path health (PathHealthMonitor) -----------------------------------
    /// Revival requires end-to-end proof: a failed subflow is re-admitted
    /// only after `probe_required_acks` keepalive probes came back with sane
    /// RTT samples. A forward-link up-transition then merely resets the
    /// probe schedule instead of reviving directly. Off (the default) keeps
    /// the trust-the-link revival — and seed bit-identity.
    bool probe_revival = false;
    /// Initial spacing of revival probes; doubles per probe up to
    /// probe_interval_max (reset by an up-transition or a sane echo).
    TimeNs probe_interval = milliseconds(200);
    TimeNs probe_interval_max = seconds(2);
    /// Consecutive sane probe echoes required before revival.
    int probe_required_acks = 2;
    /// When positive, an established subflow with nothing queued or in
    /// flight is probed every `keepalive_idle`; `keepalive_misses`
    /// consecutive unanswered keepalives declare it dead. Detects silent
    /// blackouts on idle paths (e.g. an unused backup), which otherwise
    /// surface only when the scheduler needs the path. 0 = off (default).
    TimeNs keepalive_idle{0};
    int keepalive_misses = 2;

    // ---- Connection watchdog ------------------------------------------------
    /// When positive, the connection polls for meta-level stalls: delivered
    /// bytes making no progress for `stall_timeout` while packets are
    /// outstanding (Q/QU/RQ non-empty), at least one subflow is established
    /// and the receive window is open. A stall traces `conn_stall`, bumps
    /// `conn.stalls` and re-triggers the scheduler. 0 = off (default).
    TimeNs stall_timeout{0};
    /// On a declared stall, additionally force-reinject the oldest in-flight
    /// packet into RQ — the §3.3 rescue lifted into infrastructure, for
    /// wedges a (custom) scheduler never resolves on its own.
    bool stall_rescue = false;

    // ---- Receive-window hardening -------------------------------------------
    /// Window-update transport. -1 (the seed default) delivers app-read
    /// window updates over a lossless side channel delayed by the first
    /// subflow's reverse-path latency. >= 0 routes them over that subflow's
    /// real reverse link as pure ACKs, where they queue, pay serialization
    /// and die in blackouts or drops like anything else on the wire — an
    /// ack_blackout can then silently close the window forever, which is
    /// exactly what zero_window_probe below exists to survive.
    int window_update_subflow = -1;
    /// RFC 9293 §3.8.6.1 persist timer: when the advertised window cannot
    /// fit the next packet, nothing is in flight (so no RTO is armed) and
    /// data is waiting, probe the window on an exponential backoff
    /// (persist_interval doubling up to persist_interval_max). The probe's
    /// pure-ACK echo carries the live window, so a lost window update can
    /// no longer deadlock the connection. Raises TriggerKind::kRwndLimited
    /// once per blocked episode. Off = seed behaviour.
    bool zero_window_probe = false;
    TimeNs persist_interval = milliseconds(200);
    TimeNs persist_interval_max = seconds(2);

    // ---- Middlebox-interference fallback (RFC 8684 §3.7) --------------------
    /// Arms the fallback state machine: receiver-side detection (DSS
    /// checksum validation + mapping-loss reporting; implies
    /// receiver.dss_checksum) and sender-side ACK-option-strip detection
    /// feed enter_fallback(), which elects a surviving subflow, abandons
    /// the rest (harvesting their in-flight data into RQ) and pins the
    /// connection to single-path operation. Off = seed behaviour: a naive
    /// stack that wedges or delivers corrupt data under interference.
    bool middlebox_fallback = false;
  };

  /// Called for every segment delivered in order to the receiving
  /// application: (meta_seq, size, delivery time).
  using DeliverFn =
      std::function<void(std::uint64_t meta_seq, std::int32_t size, TimeNs at)>;

  MptcpConnection(sim::Simulator& sim, Config cfg, Rng rng);
  ~MptcpConnection();  // out of line: PathHealthMonitor is incomplete here

  // ---- Application interface (wrapped by api::ProgmpSocket) ---------------
  /// Installs the scheduler for this connection (per-connection choice,
  /// §3.2). Must be set before the first write.
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  [[nodiscard]] Scheduler* scheduler() { return scheduler_.get(); }

  // ---- Quarantine (host-driven spec containment) --------------------------
  /// Observer for scheduler runtime faults, called after the engine rolled
  /// the faulting execution back (and ran the fallback). A Host uses it to
  /// feed per-program fault scoring; the quarantine decision comes back via
  /// quarantine_scheduler().
  using FaultObserver = std::function<void(FaultKind, TriggerKind)>;
  void set_fault_observer(FaultObserver fn) {
    fault_observer_ = std::move(fn);
  }

  /// Demotes the installed scheduler to the built-in default: the original
  /// instance is parked (not destroyed — a shared program cache entry and
  /// its registers survive) and every trigger runs run_default_minrtt until
  /// reinstate_scheduler(). The caller (Host) owns the policy and emits the
  /// kSpecQuarantine/kSpecReinstate trace events with the scoring payload.
  /// No-op if already quarantined or no scheduler installed.
  void quarantine_scheduler();
  /// Restores the parked scheduler. No-op unless quarantined.
  void reinstate_scheduler();
  [[nodiscard]] bool scheduler_quarantined() const {
    return quarantined_original_ != nullptr;
  }
  /// Quarantine state served to specs as R94 (0 active, 1 quarantined,
  /// 2 probation); owned by the host's SpecQuarantine manager.
  void set_quarantine_signal(std::int64_t state) {
    quarantine_signal_ = state;
  }
  [[nodiscard]] std::int64_t quarantine_signal() const {
    return quarantine_signal_;
  }

  /// Pushes `bytes` of application data into the sending queue Q, split
  /// into MSS-sized packets carrying `props`. Triggers the scheduler.
  void write(std::int64_t bytes, const SkbProps& props = {});

  /// Sets a scheduler register (application -> scheduler signalling, §3.2).
  void set_register(int idx, std::int64_t value);
  [[nodiscard]] std::int64_t get_register(int idx) const;

  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

  // ---- Path manager --------------------------------------------------------
  /// Establishes an additional subflow at the current time (e.g. the LTE
  /// leg of a handover). Returns its slot.
  int add_subflow(const SubflowSpec& spec);

  /// Closes/fails a subflow; its unsent and unacked packets move to RQ and
  /// the scheduler is triggered — packets must not be lost (§3.3).
  void close_subflow(int slot);

  /// Declares a subflow dead after a path failure (called automatically when
  /// the consecutive-RTO death threshold fires, or manually by tests/apps).
  /// Stranded packets move to RQ and the scheduler reschedules them on the
  /// survivors; the subflow stays revivable.
  void fail_subflow(int slot);

  /// Revives a failed subflow: fresh sequence space on both ends, slow-start
  /// restart, and a kSubflowAdded trigger so the scheduler sees it again.
  /// No-op unless the subflow is in the failed state. Called automatically
  /// on link restore while Config::revive_on_restore is set (or, with
  /// Config::probe_revival, by the PathHealthMonitor once the path answered
  /// enough sane probes; such revivals trace kSubflowRevived with a=1).
  void revive_subflow(int slot, bool probe_proven = false);

  // ---- Resilience knobs (live reconfiguration) ----------------------------
  /// Applies a new consecutive-RTO death threshold to all subflows (0
  /// disables detection).
  void set_rto_death_threshold(int threshold);
  void set_revive_on_restore(bool on) { cfg_.revive_on_restore = on; }
  void set_revival_min_uptime(TimeNs t) { cfg_.revival_min_uptime = t; }
  void set_sched_fault_fallback(bool on) { cfg_.sched_fault_fallback = on; }
  /// Live path-health reconfiguration: enabling probing or keepalives after
  /// construction creates the monitor on demand (already-failed subflows
  /// start being probed immediately).
  void set_probe_revival(bool on);
  void set_keepalive(TimeNs idle, int misses = 2);
  /// Live watchdog reconfiguration; enabling arms the poll timer.
  void set_stall_timeout(TimeNs timeout);
  void set_stall_rescue(bool on) { cfg_.stall_rescue = on; }
  /// Live receive-window hardening knobs. Routing applies from the next
  /// window update; enabling probing arms the persist timer immediately if
  /// the sender is already rwnd-blocked, disabling cancels a pending chain.
  void set_window_update_subflow(int slot) {
    cfg_.window_update_subflow = slot;
  }
  void set_zero_window_probe(bool on);
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// TEST ONLY: makes fail_subflow() drop the dead subflow's stranded
  /// packets instead of reinjecting them into RQ — a deliberately broken
  /// build that the invariant checker's no-stranded-packets check must
  /// catch (chaos-soak self-test). Never set outside tests.
  void set_test_drop_failed_subflow_orphans(bool on) {
    test_drop_failed_subflow_orphans_ = on;
  }

  // ---- Introspection -------------------------------------------------------
  [[nodiscard]] int subflow_count() const {
    return static_cast<int>(subflows_.size());
  }
  [[nodiscard]] SubflowSender& subflow(int slot) {
    return *subflows_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const SubflowSender& subflow(int slot) const {
    return *subflows_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] Receiver& receiver() { return *receiver_; }
  [[nodiscard]] const Receiver& receiver() const { return *receiver_; }

  // ---- Host receive-memory pool interface ----------------------------------
  /// Applies a pool grant (or reclaim/shed demotion) to the receiver's
  /// buffer cap. `shed` marks the change as a shed-policy demotion (or, with
  /// a growing grant, a restoration) and traces kMemShed accordingly.
  void set_recv_buf_grant(std::int64_t bytes, bool shed = false);
  /// Host pool pressure broadcast: records the level (0 = cleared), traces
  /// kMemPressure and fires TriggerKind::kMemPressure so the scheduler can
  /// react (e.g. a redundant spec backing off its duplicate copies).
  void signal_mem_pressure(std::int64_t level);
  /// Last broadcast pressure level — served to specs as register R91.
  [[nodiscard]] std::int64_t mem_pressure_level() const {
    return mem_pressure_level_;
  }
  [[nodiscard]] sim::NetPath& path(int slot) {
    return *paths_[static_cast<std::size_t>(slot)];
  }
  /// Identity inside a multi-connection host (-1 when standalone).
  [[nodiscard]] int conn_id() const { return cfg_.conn_id; }

  [[nodiscard]] std::int64_t delivered_bytes() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::int64_t written_bytes() const { return written_bytes_; }
  [[nodiscard]] std::size_t q_len() const { return queues_.q.size(); }
  [[nodiscard]] std::size_t qu_len() const { return queues_.qu.size(); }
  [[nodiscard]] std::size_t rq_len() const { return queues_.rq.size(); }

  // ---- Invariant-checker introspection (read-only queue views) ------------
  [[nodiscard]] const PacketQueue& sending_queue() const { return queues_.q; }
  [[nodiscard]] const PacketQueue& inflight_queue() const {
    return queues_.qu;
  }
  [[nodiscard]] const PacketQueue& reinjection_queue() const {
    return queues_.rq;
  }
  [[nodiscard]] const std::unordered_map<std::uint64_t, SkbPtr>& unacked()
      const {
    return unacked_;
  }
  /// Bytes in flight at the meta level — the QU byte aggregate, maintained
  /// incrementally by the queue layer.
  [[nodiscard]] std::int64_t qu_bytes() const { return queues_.qu.bytes(); }
  [[nodiscard]] std::int64_t rwnd_bytes() const { return rwnd_; }
  [[nodiscard]] std::uint64_t meta_una_bytes() const { return meta_una_bytes_; }
  [[nodiscard]] std::uint64_t right_edge_bytes() const {
    return right_edge_bytes_;
  }

  // ---- Receive-window hardening introspection -----------------------------
  /// Zero-window probes the persist timer put on the wire.
  [[nodiscard]] std::int64_t zero_window_probes() const {
    return zero_window_probes_;
  }
  /// Window updates routed over a real reverse link / that survived it.
  [[nodiscard]] std::int64_t wnd_updates_routed() const {
    return wnd_updates_routed_;
  }
  [[nodiscard]] std::int64_t wnd_updates_delivered() const {
    return wnd_updates_delivered_;
  }
  /// Whether the persist timer is currently armed (sender rwnd-blocked).
  [[nodiscard]] bool persist_armed() const { return persist_armed_; }

  // ---- Fallback introspection ---------------------------------------------
  [[nodiscard]] FallbackState fallback_state() const { return fallback_state_; }
  /// Slot of the elected surviving subflow (-1 before any fallback).
  [[nodiscard]] int fallback_survivor() const { return fallback_survivor_; }
  /// Completed Native -> SinglePath transitions (0 or 1 per connection).
  [[nodiscard]] std::int64_t fallbacks() const { return fallbacks_; }
  /// Stripped-option pure ACKs the sender side detected.
  [[nodiscard]] std::int64_t ack_tampered_acks() const {
    return ack_tampered_acks_;
  }
  /// add_subflow() calls refused because the connection is pinned to
  /// single-path operation.
  [[nodiscard]] std::int64_t fallback_rejected_joins() const {
    return fallback_rejected_joins_;
  }

  // ---- Path health / watchdog introspection -------------------------------
  /// Null unless probing or keepalives are (or were) enabled.
  [[nodiscard]] PathHealthMonitor* path_health() { return health_.get(); }
  [[nodiscard]] const PathHealthMonitor* path_health() const {
    return health_.get();
  }
  /// Meta-level stalls the watchdog declared / packets it force-reinjected.
  [[nodiscard]] std::int64_t stalls() const { return stalls_; }
  [[nodiscard]] std::int64_t stall_rescues() const { return stall_rescues_; }
  [[nodiscard]] const SchedulerStats& scheduler_stats() const {
    return sched_stats_;
  }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Connection-wide event tracer (see core/trace.hpp). Enable via
  /// Config::trace_enabled or tracer().set_enabled(true).
  [[nodiscard]] Tracer& tracer() { return trace_; }
  [[nodiscard]] const Tracer& tracer() const { return trace_; }

  /// Per-connection metrics registry. Counters mirroring SchedulerStats and
  /// per-subflow state are refreshed by refresh_metrics(); the engine keeps
  /// the execution histograms up to date live.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

  /// Syncs the registry's counters/gauges with the authoritative stats
  /// (SchedulerStats, subflow stats, queue depths) — called before a dump.
  void refresh_metrics();

  /// Execution environment that ran the most recent scheduler execution
  /// ("ebpf", "native", ...), for the proc dump.
  [[nodiscard]] const char* last_exec_backend() const {
    return last_exec_backend_;
  }

  /// Sum of payload bytes sent on the wire across subflows (incl.
  /// retransmissions and redundant copies) — the transmission-overhead
  /// metric of §5.1/§5.3.
  [[nodiscard]] std::int64_t wire_bytes_sent() const;

  /// Fires the scheduler manually (used by tests and the playground).
  void trigger(Trigger t);

 private:
  int create_subflow(const SubflowSpec& spec);
  /// Creates the PathHealthMonitor on demand and attaches every slot.
  void ensure_path_health();
  /// Arms the watchdog poll timer (idempotent; no-op while stall_timeout=0).
  void arm_watchdog();
  void schedule_watchdog_poll();
  void watchdog_poll();
  /// Up/down observer for the forward (data) link of `slot` — drives the
  /// revival policy, including the revival_min_uptime hysteresis window.
  void on_path_state(int slot, bool up);
  /// Arms an epoch-guarded revival of `slot` after `delay`; abandoned if the
  /// link goes down again (epoch bump) or is down when the check fires.
  void schedule_revival_check(int slot, TimeNs delay);
  std::unique_ptr<tcp::CongestionControl> make_cc();
  void reinject_orphans(const std::vector<SkbPtr>& orphans);
  void run_engine();
  bool run_scheduler_once(Trigger t);
  void apply_actions(const SchedulerContext& ctx);
  void handle_meta_ack(std::uint64_t meta_ack, std::int64_t rwnd,
                       std::int64_t wnd_stamp);
  void handle_loss_suspected(int slot, const SkbPtr& skb);
  void detach_everywhere(const SkbPtr& skb);
  /// Transports an app-read window update to the sender side — over the
  /// seed's lossless side channel or a real reverse link (Config knob).
  void deliver_window_update(std::int64_t wnd_stamp, std::int64_t rwnd);
  void apply_window_update(std::int64_t wnd_stamp, std::int64_t rwnd);
  /// RFC 9293 §3.10.7.4 (WL1/WL2) staleness guard, keyed on the receiver's
  /// emission-order stamp: only a strictly newer advertisement may change
  /// the window view. Ordering by cumulative ack alone is not enough — on
  /// asymmetric paths a slow subflow's ACK arrives with a fresher meta_ack
  /// but an older window snapshot than the side-channel updates it raced,
  /// and letting it win wedges the sender on a long-reopened window.
  void apply_window(std::int64_t wnd_stamp, std::int64_t rwnd);
  /// Receiver reported an unusable data-level mapping (stripped DSS option
  /// or checksum failure): requeue the skb — the subflow level ACKed the
  /// bytes, so nothing else will retransmit them — then fall back.
  void on_mapping_failure(int slot, std::uint64_t meta_seq,
                          MappingFailure cause);
  /// The RFC 8684 §3.7 transition: elect a survivor (prefer a non-tampered,
  /// non-backup, lowest-srtt established subflow), abandon everything else
  /// and pin the connection to single-path operation. No-op unless
  /// Config::middlebox_fallback is on and the state is still Native.
  void enter_fallback(int bad_slot, MappingFailure cause);
  /// close()-style teardown used by the fallback transition: harvest +
  /// sent-mask clearing (like fail_subflow — whatever was on the abandoned
  /// wire is as good as gone) + RQ reinjection, persist-chain cancellation
  /// and a kSubflowClosed trigger. The subflow ends up kClosed: not
  /// revivable, per the single-path pin.
  void abandon_subflow(int slot);
  /// Cancels an armed zero-window persist-probe chain (epoch bump). Called
  /// whenever a subflow ceases to exist (close/fail/abandon) so no probe
  /// rides a dead subflow; maybe_arm_persist() re-arms a fresh chain on a
  /// surviving subflow at the next engine-drain boundary if still blocked.
  void cancel_persist_chain();
  /// True when data is waiting, nothing is in flight anywhere, and the
  /// advertised window cannot fit the next packet — the persist condition.
  [[nodiscard]] bool rwnd_blocked() const;
  /// Arms or cancels the persist timer to match rwnd_blocked(); called at
  /// every engine-drain boundary.
  void maybe_arm_persist();
  void schedule_persist_probe(std::uint64_t epoch);
  void send_zero_window_probe(int slot);

  sim::Simulator& sim_;
  Config cfg_;
  Rng rng_;

  std::unique_ptr<Receiver> receiver_;
  /// Per-slot path binding. Shared paths are owned by Config::network;
  /// private ones live in owned_paths_. Either way the pointer is stable for
  /// the connection's lifetime.
  std::vector<sim::NetPath*> paths_;
  std::vector<std::unique_ptr<sim::NetPath>> owned_paths_;
  std::vector<std::unique_ptr<SubflowSender>> subflows_;
  /// Down-transition counter per slot: a pending hysteresis revival is
  /// cancelled when the link flapped again inside its window.
  std::vector<std::uint32_t> link_down_epoch_;
  /// One-shot per-slot amnesty armed when a link restore finds the subflow
  /// still established: RTO backoff can declare the death *after* the
  /// restore, when no further up-transition will arrive to revive it. The
  /// amnesty is consumed by that death (bounding congestion-death churn to
  /// one retry per restore) and cancelled by the first successful ACK —
  /// a path that proved working post-restore dies for real reasons.
  std::vector<bool> restore_amnesty_;
  std::shared_ptr<tcp::LiaCoupling> lia_group_;
  /// Active prober/keepalive engine; created only when Config::probe_revival
  /// or keepalive_idle enables it (null in default runs).
  std::unique_ptr<PathHealthMonitor> health_;

  // ---- Watchdog state -----------------------------------------------------
  bool watchdog_armed_ = false;
  std::int64_t wd_last_delivered_ = 0;
  TimeNs wd_last_progress_at_{0};
  std::int64_t stalls_ = 0;
  std::int64_t stall_rescues_ = 0;

  /// TEST ONLY — see set_test_drop_failed_subflow_orphans().
  bool test_drop_failed_subflow_orphans_ = false;

  // ---- Persist (zero-window probe) state ----------------------------------
  bool persist_armed_ = false;
  int persist_backoff_ = 1;  ///< interval multiplier; doubles per probe
  /// Bumped to cancel a pending probe chain (window opened, knob flipped).
  std::uint64_t persist_epoch_ = 0;
  std::int64_t zero_window_probes_ = 0;
  std::int64_t wnd_updates_routed_ = 0;
  std::int64_t wnd_updates_delivered_ = 0;

  /// Last host pool pressure broadcast (0 = no pressure); see
  /// signal_mem_pressure().
  std::int64_t mem_pressure_level_ = 0;

  // ---- Fallback state -----------------------------------------------------
  FallbackState fallback_state_ = FallbackState::kNative;
  int fallback_survivor_ = -1;
  std::int64_t fallbacks_ = 0;
  std::int64_t ack_tampered_acks_ = 0;
  std::int64_t fallback_rejected_joins_ = 0;

  std::unique_ptr<Scheduler> scheduler_;
  SchedulerStats sched_stats_;
  /// Per-FaultKind runtime-fault counts (index = FaultKind value).
  std::array<std::int64_t, 6> fault_counts_{};
  FaultObserver fault_observer_;
  /// Parked original while the default scheduler stands in (quarantine).
  std::unique_ptr<Scheduler> quarantined_original_;
  std::int64_t quarantine_signal_ = 0;  ///< served to specs as R94

  Tracer trace_;
  MetricsRegistry metrics_;
  /// Live execution histograms (stable pointers into metrics_).
  MetricHistogram* hist_insns_per_exec_ = nullptr;
  MetricHistogram* hist_execs_per_trigger_ = nullptr;
  MetricHistogram* hist_pushes_per_exec_ = nullptr;
  const char* last_exec_backend_ = "none";

  /// The three meta-level queues (Q, QU, RQ) as flat tracked PacketQueues;
  /// the bundle is the single QueueId -> queue mapping shared with the
  /// scheduler context.
  QueueBundle queues_;
  std::unordered_map<std::uint64_t, SkbPtr> unacked_;  ///< meta_seq -> skb

  std::vector<std::int64_t> registers_;

  /// Per-execution scratch, reused across scheduler runs so the hot trigger
  /// path performs no allocations: the subflow snapshot vector and the
  /// long-lived scheduler context (reset() re-arms it per execution).
  std::vector<SubflowInfo> infos_;
  std::optional<SchedulerContext> sched_ctx_;

  std::uint64_t next_meta_seq_ = 0;
  std::uint64_t next_byte_offset_ = 0;
  std::uint64_t meta_una_ = 0;        ///< cumulative data-level ACK
  std::uint64_t meta_una_bytes_ = 0;  ///< byte offset of the data-level ACK
  std::uint64_t right_edge_bytes_ = 0;  ///< highest transmitted byte + 1
  std::int64_t rwnd_ = 0;             ///< last advertised receive window
  std::int64_t wnd_stamp_ = 0;        ///< emission stamp rwnd_ came from
  std::int64_t written_bytes_ = 0;
  std::int64_t delivered_bytes_ = 0;

  DeliverFn on_deliver_;

  bool in_engine_ = false;
  std::deque<Trigger> pending_;

  /// Lifetime token for simulator events scheduled by the connection.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace progmp::mptcp
