// Receiver-side packet handling (§4.2).
//
// MPTCP receivers juggle two sequence spaces: each subflow's TCP sequence
// numbers and the connection-wide meta (data) sequence numbers. The paper
// found that the mainline Linux receiver — which only forwards *in-subflow-
// order* data from the subflow queue to the meta socket — withholds data
// that is already deliverable in meta order. Both models are implemented:
//
//  * kMultiLayer  — the mainline behaviour: a subflow's out-of-order packets
//                   stay in the subflow queue; the meta socket never sees
//                   them until the subflow gap closes.
//  * kOptimized   — the paper's fix: every arriving packet is handed to the
//                   meta reassembly immediately; delivery happens as soon as
//                   data is contiguous in *meta* order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "core/trace.hpp"
#include "mptcp/skb.hpp"
#include "sim/simulator.hpp"

namespace progmp::mptcp {

/// One data segment as it arrives at the receiver.
struct DataSegment {
  int sbf_slot = 0;
  std::uint64_t sbf_seq = 0;   ///< subflow-level sequence (segments)
  std::uint64_t meta_seq = 0;  ///< data-level sequence (segments)
  std::int32_t size = 0;
  /// DSS checksum as it arrived (the sender stamps skb.dss_csum onto the
  /// wire; a payload-rewriting middlebox mangles it in flight).
  std::uint32_t dss_csum = 0;
  /// A middlebox removed the DSS option: the bytes arrived as plain TCP
  /// data with no data-level mapping (meta_seq/dss_csum are the values the
  /// sender *would have* sent — ground truth the receiver must not use for
  /// placement).
  bool dss_stripped = false;
  /// Ground truth that a proxy rewrote the payload. The receiver never
  /// reads this for detection (that is the checksum's job); it only feeds
  /// the corrupt-delivery oracle when detection is off.
  bool payload_rewritten = false;
};

/// Why a segment's data-level mapping was unusable (MappingFailureFn cause,
/// kFallback trace field c). Values align with sim::Link::TamperKind.
enum class MappingFailure : int {
  kStripped = 1,  ///< DSS option removed: data arrived mapping-less
  kChecksum = 2,  ///< DSS checksum mismatch: payload rewritten in flight
  kAckStripped = 3,  ///< MPTCP options removed from a pure ACK (sender-side
                     ///< detection; never raised by the receiver itself)
};

/// Acknowledgement flowing back to the sender: cumulative on both levels
/// plus the advertised receive window.
struct AckInfo {
  int sbf_slot = 0;
  std::uint64_t sbf_ack = 0;   ///< next expected subflow seq
  std::uint64_t meta_ack = 0;  ///< next expected meta seq
  std::int64_t rwnd_bytes = 0;
  /// Receiver emission-order stamp, shared with window updates (the role
  /// SEG.SEQ plays in RFC 9293 §3.10.7.4's WL1/WL2 check). ACKs and window
  /// updates race each other across subflows with wildly different delays;
  /// a fresher cumulative ack can carry an *older* window snapshot, and a
  /// sender that let it win would wedge on a window the receiver has long
  /// since reopened. Only the newest stamp may change the sender's view.
  std::int64_t wnd_stamp = 0;
};

enum class ReceiverModel { kMultiLayer, kOptimized };

class Receiver {
 public:
  struct Config {
    ReceiverModel model = ReceiverModel::kOptimized;
    std::int64_t recv_buf_bytes = 8 * 1024 * 1024;
    /// 0 means the application reads delivered data instantly; otherwise
    /// delivered bytes drain at this rate, shrinking the advertised window.
    std::int64_t app_read_bytes_per_sec = 0;
    /// Enforce recv_buf_bytes against out-of-order data: a first-seen
    /// segment that would be *parked* (subflow OOO queue or meta
    /// reassembly) when unread + held OOO bytes cannot absorb it is dropped
    /// (kRecvBufDrop) instead of stored — the reassembly buffers stop being
    /// magically unbounded. In-order data is always accepted: it lies
    /// inside the advertised window, which already accounts for unread
    /// bytes. Default off = seed behaviour.
    bool enforce_recv_buf = false;
    /// SWS avoidance (RFC 9293 §3.8.6.2.2): only emit a window update when
    /// the window opens from zero or has grown >= sws_mss_bytes since the
    /// last advertisement (updates below that threshold are counted as
    /// coalesced). Default off = one update per 4 KB app-read chunk (seed
    /// behaviour).
    bool coalesce_window_updates = false;
    std::int32_t sws_mss_bytes = 1400;

    // ---- Dynamic receive-buffer sizing (DRS) ------------------------------
    /// Kernel-style receive-buffer autotuning: the *effective* buffer size
    /// (recv_buf_target, which backs the advertised window) starts at
    /// autotune_initial_bytes and is re-evaluated once per RTT (the
    /// connection feeds set_rtt_hint) against 2x the bytes delivered that
    /// RTT — the classic grow-toward-2xBDP rule. It shrinks (halving at
    /// most, after two consecutive low epochs) when the reader drains and
    /// the flow no longer needs the space, and is always clamped to
    /// [autotune_min_bytes, recv_buf_limit] where the limit is the host
    /// pool's grant (or recv_buf_bytes standalone). Default off = the
    /// static buffer of the seed.
    bool autotune = false;
    std::int64_t autotune_min_bytes = 64 * 1024;
    std::int64_t autotune_initial_bytes = 128 * 1024;

    /// RFC 8684-style middlebox-interference detection: validate the DSS
    /// checksum on every first-seen segment and treat mapping-less
    /// (option-stripped) data as a mapping failure, reporting both through
    /// MappingFailureFn so the connection can fall back to single-path
    /// operation. Off (seed behaviour) the receiver is naive: stripped data
    /// is silently unplaceable (the transfer wedges) and rewritten payloads
    /// are delivered corrupt (counted by the corrupt_delivered_bytes
    /// oracle). Default off = seed bit-identity.
    bool dss_checksum = false;
  };

  /// Called for every segment that becomes deliverable to the application,
  /// in meta order.
  using DeliverFn =
      std::function<void(std::uint64_t meta_seq, std::int32_t size)>;

  /// Fired when the application reader frees buffer space — the TCP window
  /// update that reopens a closed window (otherwise a sender blocked on a
  /// zero window would deadlock, since no data means no ACKs). Carries the
  /// emission-order stamp and the cumulative ack the window is paired
  /// with, so the sender can apply the RFC 9293 WL1/WL2 staleness guard
  /// when updates race data-path ACKs across subflows.
  using WindowUpdateFn = std::function<void(
      std::int64_t wnd_stamp, std::uint64_t meta_ack, std::int64_t rwnd_bytes)>;

  /// Fired (only with Config::dss_checksum on) when a segment's data-level
  /// mapping is unusable — stripped DSS option or checksum mismatch. The
  /// subflow-level exchange already completed normally (TCP saw ordinary
  /// data and will ACK it), so the connection must recover the meta-level
  /// payload itself: requeue the skb and fall back per RFC 8684 §3.7.
  using MappingFailureFn = std::function<void(
      int sbf_slot, std::uint64_t meta_seq, MappingFailure cause)>;

  /// Asked by the autotuner for a bigger buffer cap: receives the desired
  /// limit in bytes and returns the limit actually granted (the host pool's
  /// answer, possibly smaller — or even smaller than the current limit when
  /// the pool reclaimed or shed this connection in the meantime).
  using MemGrantFn = std::function<std::int64_t(std::int64_t want_bytes)>;

  Receiver(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg) {
    recv_buf_limit_ = cfg_.recv_buf_bytes;
    recv_buf_target_ = cfg_.recv_buf_bytes;
    if (cfg_.autotune) {
      recv_buf_target_ =
          std::clamp(cfg_.autotune_initial_bytes,
                     std::min(cfg_.autotune_min_bytes, recv_buf_limit_),
                     recv_buf_limit_);
    }
    last_advertised_rwnd_ = recv_buf_target_;
  }

  void set_deliver_fn(DeliverFn fn) { deliver_fn_ = std::move(fn); }
  void set_mapping_failure_fn(MappingFailureFn fn) {
    mapping_failure_fn_ = std::move(fn);
  }
  void set_window_update_fn(WindowUpdateFn fn) {
    window_update_fn_ = std::move(fn);
  }
  /// Emits in-order deliveries and window updates into the connection trace.
  void set_tracer(Tracer* trace) { trace_ = trace; }

  /// Processes one arriving segment and returns the ACK to send back on the
  /// same subflow.
  AckInfo on_data(const DataSegment& seg);

  /// Current cumulative state for `slot` without processing any data — the
  /// answer to a zero-window probe (RFC 9293 §3.8.6.1): a pure ACK carrying
  /// the live receive window. Non-const: the advertised window extends the
  /// liability envelope like any other advertisement.
  [[nodiscard]] AckInfo peek_ack(int slot);

  /// Forgets all per-subflow sequence state for `slot` — the receiver half of
  /// reviving a failed subflow, which restarts with a fresh subflow sequence
  /// space (SubflowSender::reopen()). Meta-level state is untouched: data the
  /// dead subflow managed to deliver stays delivered.
  void reset_subflow(int slot);

  [[nodiscard]] std::uint64_t meta_expected() const { return meta_expected_; }
  [[nodiscard]] std::uint64_t subflow_expected(int slot) const {
    return subflows_[static_cast<std::size_t>(slot)].expected;
  }
  [[nodiscard]] std::int64_t rwnd_bytes() const;
  [[nodiscard]] std::int64_t delivered_bytes() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::int64_t duplicate_segments() const { return dup_segs_; }
  /// Split of duplicate_segments() by provenance: subflow-level duplicates
  /// are spurious network retransmissions (the same copy arrived twice);
  /// meta-level duplicates are D-SACK-style redundant-scheduler copies (a
  /// *different* transmission of already-received meta data, typically a
  /// redundant scheduler's second copy racing the first across paths).
  [[nodiscard]] std::int64_t network_dup_segments() const {
    return dup_segs_network_;
  }
  [[nodiscard]] std::int64_t dsack_dup_segments() const { return dsack_dups_; }
  [[nodiscard]] std::int64_t unread_bytes() const { return unread_bytes_; }
  /// Bytes parked out of order: meta reassembly plus (multi-layer only)
  /// data held hostage in subflow OOO queues.
  [[nodiscard]] std::int64_t ooo_bytes() const {
    return meta_ooo_bytes_ + sbf_ooo_bytes_;
  }
  /// Total receive-buffer occupancy the enforcement bound applies to.
  [[nodiscard]] std::int64_t buffered_bytes() const {
    return unread_bytes_ + ooo_bytes();
  }
  [[nodiscard]] std::int64_t recv_buf_drops() const { return recv_buf_drops_; }

  // ---- Middlebox-interference accounting ------------------------------------
  /// Segments that arrived with their DSS mapping stripped and were caught
  /// by detection (Config::dss_checksum on).
  [[nodiscard]] std::int64_t mapping_lost_segments() const {
    return mapping_lost_segments_;
  }
  /// Segments whose DSS checksum failed validation (payload rewritten).
  [[nodiscard]] std::int64_t csum_fail_segments() const {
    return csum_fail_segments_;
  }
  /// Oracle: bytes delivered to the application whose payload a middlebox
  /// had rewritten (only possible with detection off — the naive receiver
  /// cannot tell). bench_fig_fallback's corruption axis.
  [[nodiscard]] std::int64_t corrupt_delivered_bytes() const {
    return corrupt_delivered_bytes_;
  }

  // ---- Dynamic buffer sizing ------------------------------------------------
  /// Effective buffer size backing the advertised window (== recv_buf_bytes
  /// unless autotuning or a pool grant resized it).
  [[nodiscard]] std::int64_t recv_buf_target() const {
    return recv_buf_target_;
  }
  /// Hard cap on the target: the host pool's grant (or recv_buf_bytes
  /// standalone).
  [[nodiscard]] std::int64_t recv_buf_limit() const { return recv_buf_limit_; }
  /// Applies a new buffer cap — the pool's reclaim/shed/grant path. The
  /// target clamps down immediately, so every *future* advertisement fits
  /// the new grant; promises already on the wire are covered by the
  /// liability envelope (mem_liability_bytes) until consumed.
  void set_recv_buf_limit(std::int64_t cap);
  /// RTT estimate for the DRS epoch clock — the connection feeds the
  /// smallest smoothed RTT across its established subflows.
  void set_rtt_hint(TimeNs rtt) { rtt_hint_ = rtt; }
  /// Pool-grow callback (see MemGrantFn); unset = standalone clamping.
  void set_mem_grant_fn(MemGrantFn fn) { mem_grant_fn_ = std::move(fn); }
  /// Re-advertises the window if it grew enough to matter (SWS rules
  /// apply). Ordinarily app reads drive this; a raised buffer cap is the
  /// other event that reopens space without any data arriving.
  void announce_window() { maybe_emit_window_update(); }
  /// Bytes of receive memory this connection is liable for: the effective
  /// buffer target, or — after a shrink — the outstanding window promise
  /// max(target, advertised right edge - app read position). In-flight data
  /// sent against a pre-shrink advertisement is never treated as an
  /// overrun; the envelope converges back to the target as the promise is
  /// consumed. This is the bound enforcement drops and audit() apply.
  [[nodiscard]] std::int64_t mem_liability_bytes() const {
    const std::int64_t read_pos = delivered_bytes_ - unread_bytes_;
    return std::max(recv_buf_target_, max_right_edge_bytes_ - read_pos);
  }
  [[nodiscard]] std::int64_t autotune_grows() const { return autotune_grows_; }
  [[nodiscard]] std::int64_t autotune_shrinks() const {
    return autotune_shrinks_;
  }
  [[nodiscard]] std::int64_t window_updates_emitted() const {
    return window_updates_emitted_;
  }
  [[nodiscard]] std::int64_t window_updates_coalesced() const {
    return window_updates_coalesced_;
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Whether the receiver holds (or already delivered) the payload of
  /// `meta_seq` — delivered in order, parked in the meta reassembly, or (in
  /// the multi-layer model) withheld in a subflow's out-of-order queue. Used
  /// by the connection-level "no stranded packets" invariant: a packet the
  /// sender no longer owns anywhere must at least exist here. O(log n) via
  /// the subflow-OOO meta_seq index (a full scan of every subflow queue made
  /// strided invariant passes quadratic at chaos scale).
  [[nodiscard]] bool has_received(std::uint64_t meta_seq) const {
    if (meta_seq < meta_expected_) return true;
    if (meta_ooo_.count(meta_seq) > 0) return true;
    return sbf_ooo_meta_.count(meta_seq) > 0;
  }

  /// Full self-audit for strided invariant passes: recomputes the OOO byte
  /// counters and the has_received index from the ground-truth queues and
  /// checks the buffer bound. Returns a description of the first
  /// inconsistency, or nullopt when clean.
  [[nodiscard]] std::optional<std::string> audit() const;

  /// Chronological log of (delivery time, meta_seq) — the packetdrill-style
  /// receiver trace tests assert on this.
  struct Delivery {
    TimeNs at;
    std::uint64_t meta_seq;
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

 private:
  struct SubflowRx {
    std::uint64_t expected = 0;
    /// Out-of-order segments held at the subflow level, keyed by sbf_seq.
    std::map<std::uint64_t, DataSegment> ooo;
  };

  void meta_receive(const DataSegment& seg);
  /// meta_receive with the middlebox gate in front: validates the mapping
  /// (stripped option / DSS checksum) before the segment may touch the meta
  /// layer. Detection on -> count + report, segment never placed; detection
  /// off -> stripped data vanishes (no mapping to place it with) and
  /// rewritten data is placed corrupt.
  void meta_receive_checked(const DataSegment& seg);
  void deliver_contiguous();
  void schedule_app_read();
  void maybe_emit_window_update();
  /// One DRS step: at most once per rtt_hint, re-evaluates the target
  /// against 2x the delivered-bytes-per-RTT measurement. Called from
  /// on_data (cheap-gated on Config::autotune).
  void maybe_autotune();
  /// Records an advertisement: extends the liability envelope's right edge.
  void note_advertised(std::int64_t rwnd);
  [[nodiscard]] bool would_park(const SubflowRx& rx,
                                const DataSegment& seg) const;
  AckInfo make_ack(int slot);
  void index_erase(std::uint64_t meta_seq);

  sim::Simulator& sim_;
  Config cfg_;
  DeliverFn deliver_fn_;
  WindowUpdateFn window_update_fn_;
  MappingFailureFn mapping_failure_fn_;
  Tracer* trace_ = nullptr;

  std::array<SubflowRx, kMaxSubflows> subflows_{};

  std::uint64_t meta_expected_ = 0;
  std::map<std::uint64_t, std::int32_t> meta_ooo_;  ///< meta_seq -> size
  std::int64_t meta_ooo_bytes_ = 0;
  std::int64_t sbf_ooo_bytes_ = 0;
  /// meta_seq -> number of subflow OOO queues holding it (redundant copies
  /// of one meta segment can sit on several subflows at once).
  std::map<std::uint64_t, int> sbf_ooo_meta_;

  std::int64_t unread_bytes_ = 0;  ///< delivered but not yet read by the app
  bool read_scheduled_ = false;
  /// Window carried by the most recent ACK or window update we produced —
  /// the SWS-avoidance baseline. Optimistic under ACK loss; the
  /// opens-from-zero rule and the sender's persist timer cover that.
  std::int64_t last_advertised_rwnd_ = 0;
  /// Emission-order stamp shared by ACKs and window updates (AckInfo's
  /// wnd_stamp). peek_ack() reuses the current stamp without bumping it;
  /// between bumps the window only grows (app reads), so the sender's
  /// take-the-max rule at an equal stamp stays correct.
  std::int64_t ack_stamp_ = 0;

  std::int64_t delivered_bytes_ = 0;
  std::int64_t dup_segs_ = 0;
  std::int64_t dup_segs_network_ = 0;  ///< subflow-level (spurious retx) dups
  std::int64_t dsack_dups_ = 0;        ///< meta-level (redundant-copy) dups
  std::int64_t recv_buf_drops_ = 0;
  std::int64_t mapping_lost_segments_ = 0;
  std::int64_t csum_fail_segments_ = 0;
  std::int64_t corrupt_delivered_bytes_ = 0;

  // ---- Dynamic buffer sizing state ----------------------------------------
  std::int64_t recv_buf_target_ = 0;
  std::int64_t recv_buf_limit_ = 0;
  /// Monotone max of (cumulative delivery point + advertised window) over
  /// every advertisement — the right edge of the sender's license to
  /// transmit, in delivered-byte coordinates. See mem_liability_bytes().
  std::int64_t max_right_edge_bytes_ = 0;
  MemGrantFn mem_grant_fn_;
  TimeNs rtt_hint_{0};
  TimeNs drs_epoch_start_{-1};
  std::int64_t drs_epoch_delivered_ = 0;
  int drs_low_epochs_ = 0;  ///< consecutive epochs wanting < target/2
  std::int64_t autotune_grows_ = 0;
  std::int64_t autotune_shrinks_ = 0;
  std::int64_t window_updates_emitted_ = 0;
  std::int64_t window_updates_coalesced_ = 0;
  std::vector<Delivery> deliveries_;
};

}  // namespace progmp::mptcp
