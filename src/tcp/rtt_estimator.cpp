#include "tcp/rtt_estimator.hpp"

#include <algorithm>
#include <cstdlib>

namespace progmp::tcp {

void RttEstimator::add_sample(TimeNs rtt) {
  last_rtt_ = rtt;
  if (!has_sample_) {
    has_sample_ = true;
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    min_rtt_ = rtt;
    return;
  }
  min_rtt_ = std::min(min_rtt_, rtt);
  // RFC 6298 with alpha = 1/8, beta = 1/4.
  const TimeNs err{std::abs((rtt - srtt_).ns())};
  rttvar_ = TimeNs{(3 * rttvar_.ns() + err.ns()) / 4};
  srtt_ = TimeNs{(7 * srtt_.ns() + rtt.ns()) / 8};
}

TimeNs RttEstimator::rto() const {
  if (!has_sample_) return kInitialRto;
  const TimeNs raw = srtt_ + 4 * rttvar_;
  return std::clamp(raw, kMinRto, kMaxRto);
}

}  // namespace progmp::tcp
