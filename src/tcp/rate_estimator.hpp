// Delivery-rate estimation per subflow.
//
// The TAP scheduler (§5.4) computes the expected throughput of the preferred
// subflow "per scheduling decision" from up-to-date subflow properties. We
// expose two signals: a windowed ACK-rate estimate (what was actually
// delivered recently) and the cwnd/RTT capacity estimate. The DSL surfaces
// both as subflow properties.
#pragma once

#include <cstdint>

#include "core/stats.hpp"
#include "core/time.hpp"

namespace progmp::tcp {

class RateEstimator {
 public:
  explicit RateEstimator(TimeNs window = milliseconds(500)) : meter_(window) {}

  /// Records `bytes` newly cumulatively ACKed at `now`.
  void on_delivered(TimeNs now, std::int64_t bytes) {
    meter_.add(now, bytes);
  }

  /// Observed goodput (bytes/sec) over the sliding window.
  [[nodiscard]] double delivery_rate(TimeNs now) const {
    return meter_.bytes_per_sec(now);
  }

  /// Capacity estimate from congestion state: cwnd * mss / srtt.
  [[nodiscard]] static double cwnd_rate(std::int64_t cwnd_segments,
                                        std::int64_t mss, TimeNs srtt) {
    if (srtt.ns() <= 0) return 0.0;
    return static_cast<double>(cwnd_segments * mss) / srtt.sec();
  }

 private:
  RateMeter meter_;
};

}  // namespace progmp::tcp
