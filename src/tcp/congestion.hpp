// Per-subflow congestion control.
//
// The scheduler is "blocked by the congestion control" (§2.1): schedulers
// consult the congestion window (CWND) maintained here. Two algorithms are
// provided — uncoupled NewReno-style control and the coupled Linked-Increases
// Algorithm (LIA, RFC 6356), which is the MPTCP default and keeps the
// aggregate TCP-friendly on shared bottlenecks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/check.hpp"
#include "core/time.hpp"

namespace progmp::tcp {

/// Why the congestion window moved — the congestion-event classification
/// surfaced through the connection's trace (cwnd change events).
enum class CwndEventKind {
  kGrowth = 0,  ///< ACK-clocked increase (slow start or congestion avoidance)
  kLoss,        ///< fast-retransmit multiplicative decrease
  kRto,         ///< timeout collapse
};

/// Congestion control interface, counting in segments (the simulator
/// transmits fixed-size MSS segments).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Congestion window in segments (>= 1 at all times except during RTO
  /// recovery where it collapses to 1).
  [[nodiscard]] virtual std::int64_t cwnd() const = 0;

  /// One (or more) previously unsent segments were cumulatively ACKed at
  /// simulated time `now` (time-driven algorithms — CUBIC — need it; the
  /// ACK-clocked ones ignore it).
  virtual void on_ack(std::int64_t acked_segments, TimeNs now) = 0;

  /// Loss detected via three duplicate ACKs (fast retransmit): multiplicative
  /// decrease, stay in congestion avoidance.
  virtual void on_loss() = 0;

  /// Retransmission timeout: collapse to the initial window.
  virtual void on_rto() = 0;

  [[nodiscard]] virtual bool in_slow_start() const = 0;

  /// Latest smoothed RTT of the owning subflow. Coupled algorithms (LIA)
  /// need it for the aggregate increase factor; others ignore it.
  virtual void set_rtt_hint(TimeNs /*srtt*/) {}

  /// Observer for congestion events. Implementations report every cwnd
  /// change (growth only when the window actually moved; loss/RTO always) —
  /// the owning subflow forwards these into the connection trace.
  using CwndHook = std::function<void(CwndEventKind, std::int64_t new_cwnd)>;
  void set_cwnd_hook(CwndHook hook) { cwnd_hook_ = std::move(hook); }

 protected:
  void notify_cwnd(CwndEventKind kind, std::int64_t new_cwnd) const {
    if (cwnd_hook_) cwnd_hook_(kind, new_cwnd);
  }

 private:
  CwndHook cwnd_hook_;
};

/// Uncoupled NewReno: slow start to ssthresh, then +1 segment per RTT.
class RenoCc final : public CongestionControl {
 public:
  explicit RenoCc(std::int64_t initial_cwnd = 10)
      : cwnd_(initial_cwnd), initial_cwnd_(initial_cwnd) {}

  [[nodiscard]] std::int64_t cwnd() const override { return cwnd_; }
  void on_ack(std::int64_t acked_segments, TimeNs now) override;
  void on_loss() override;
  void on_rto() override;
  [[nodiscard]] bool in_slow_start() const override {
    return cwnd_ < ssthresh_;
  }

 private:
  std::int64_t cwnd_;
  std::int64_t initial_cwnd_;
  std::int64_t ssthresh_ = 1'000'000;  // effectively infinite until first loss
  std::int64_t ca_acc_ = 0;            // congestion-avoidance ACK accumulator
};

/// CUBIC (RFC 8312, simplified): the window grows as a cubic function of
/// the time since the last congestion event — concave up to the previous
/// maximum W_max, then convex probing beyond it. This is the Linux default
/// congestion control, so MPTCP deployments in the wild pair the paper's
/// schedulers with exactly this behaviour. TCP-friendliness (the Reno
/// emulation floor) is included; fast convergence is not.
class CubicCc final : public CongestionControl {
 public:
  explicit CubicCc(std::int64_t initial_cwnd = 10)
      : cwnd_(initial_cwnd), initial_cwnd_(initial_cwnd) {}

  [[nodiscard]] std::int64_t cwnd() const override { return cwnd_; }
  void on_ack(std::int64_t acked_segments, TimeNs now) override;
  void on_loss() override;
  void on_rto() override;
  [[nodiscard]] bool in_slow_start() const override {
    return cwnd_ < ssthresh_;
  }
  void set_rtt_hint(TimeNs srtt) override { srtt_hint_ = srtt; }

  static constexpr double kC = 0.4;     ///< cubic scaling constant
  static constexpr double kBeta = 0.7;  ///< multiplicative decrease

 private:
  [[nodiscard]] double target_at(TimeNs now) const;

  std::int64_t cwnd_;
  std::int64_t initial_cwnd_;
  std::int64_t ssthresh_ = 1'000'000;
  double w_max_ = 0.0;          ///< window before the last reduction
  TimeNs epoch_start_{-1};      ///< start of the current cubic epoch
  double k_ = 0.0;              ///< time to reach w_max again (seconds)
  double ca_acc_ = 0.0;
  TimeNs srtt_hint_{milliseconds(100)};
};

class LiaCc;

/// Shared state coupling the LIA instances of one MPTCP connection. The
/// aggregate increase is capped by the `alpha` computed over all member
/// subflows (RFC 6356 §4).
class LiaCoupling {
 public:
  void add_member(LiaCc* cc) { members_.push_back(cc); }
  void remove_member(LiaCc* cc);

  /// Recomputes alpha from the members' cwnd and RTT. Called lazily on ACKs.
  [[nodiscard]] double alpha() const;

  /// Sum of the members' congestion windows (>= 1).
  [[nodiscard]] std::int64_t cwnd_total() const;

 private:
  std::vector<LiaCc*> members_;
};

/// Coupled Linked-Increases congestion control (RFC 6356). Slow start and
/// decrease behave like Reno; the congestion-avoidance increase per ACK is
/// min(alpha/cwnd_total, 1/cwnd_i).
class LiaCc final : public CongestionControl {
 public:
  LiaCc(std::shared_ptr<LiaCoupling> group, std::int64_t initial_cwnd = 10)
      : group_(std::move(group)), cwnd_(initial_cwnd),
        initial_cwnd_(initial_cwnd) {
    PROGMP_CHECK(group_ != nullptr);
    group_->add_member(this);
  }
  ~LiaCc() override { group_->remove_member(this); }
  LiaCc(const LiaCc&) = delete;
  LiaCc& operator=(const LiaCc&) = delete;

  [[nodiscard]] std::int64_t cwnd() const override { return cwnd_; }
  void on_ack(std::int64_t acked_segments, TimeNs now) override;
  void on_loss() override;
  void on_rto() override;
  [[nodiscard]] bool in_slow_start() const override {
    return cwnd_ < ssthresh_;
  }

  /// The coupling reads this to compute alpha.
  [[nodiscard]] TimeNs srtt_hint() const { return srtt_hint_; }
  void set_rtt_hint(TimeNs srtt) override { srtt_hint_ = srtt; }

 private:
  std::shared_ptr<LiaCoupling> group_;
  std::int64_t cwnd_;
  std::int64_t initial_cwnd_;
  std::int64_t ssthresh_ = 1'000'000;
  double ca_acc_ = 0.0;
  TimeNs srtt_hint_{milliseconds(100)};
};

}  // namespace progmp::tcp
