// RFC 6298 round-trip time estimation, per subflow.
//
// Tracks SRTT and RTTVAR and derives the retransmission timeout. Also keeps
// the minimum and the latest sample because the scheduling language exposes
// RTT (latest smoothed), RTT_AVG and RTT_VAR as first-class subflow
// properties (§3.3).
#pragma once

#include "core/time.hpp"

namespace progmp::tcp {

class RttEstimator {
 public:
  /// Feeds one RTT sample (ACK arrival minus transmit time). Samples from
  /// retransmitted segments must not be fed (Karn's algorithm) — the caller
  /// enforces that.
  void add_sample(TimeNs rtt);

  [[nodiscard]] bool has_sample() const { return has_sample_; }

  /// Smoothed RTT (SRTT). Zero until the first sample.
  [[nodiscard]] TimeNs srtt() const { return srtt_; }

  /// Mean deviation (RTTVAR).
  [[nodiscard]] TimeNs rttvar() const { return rttvar_; }

  /// Smallest sample seen — a proxy for propagation delay.
  [[nodiscard]] TimeNs min_rtt() const { return min_rtt_; }

  /// Most recent raw sample.
  [[nodiscard]] TimeNs last_rtt() const { return last_rtt_; }

  /// RFC 6298 retransmission timeout: SRTT + 4*RTTVAR, clamped to
  /// [min_rto, max_rto]. Before any sample: 1 second (RFC initial value).
  [[nodiscard]] TimeNs rto() const;

  static constexpr TimeNs kMinRto = milliseconds(200);
  static constexpr TimeNs kMaxRto = seconds(60);
  static constexpr TimeNs kInitialRto = seconds(1);

 private:
  bool has_sample_ = false;
  TimeNs srtt_{0};
  TimeNs rttvar_{0};
  TimeNs min_rtt_{0};
  TimeNs last_rtt_{0};
};

}  // namespace progmp::tcp
