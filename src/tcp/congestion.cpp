#include "tcp/congestion.hpp"

#include <algorithm>
#include <cmath>

namespace progmp::tcp {

void RenoCc::on_ack(std::int64_t acked_segments, TimeNs /*now*/) {
  PROGMP_CHECK(acked_segments > 0);
  const std::int64_t before = cwnd_;
  for (std::int64_t i = 0; i < acked_segments; ++i) {
    if (cwnd_ < ssthresh_) {
      ++cwnd_;  // slow start: +1 per ACK
    } else {
      // Congestion avoidance: +1 per cwnd ACKs.
      if (++ca_acc_ >= cwnd_) {
        ca_acc_ = 0;
        ++cwnd_;
      }
    }
  }
  if (cwnd_ != before) notify_cwnd(CwndEventKind::kGrowth, cwnd_);
}

void RenoCc::on_loss() {
  ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2);
  cwnd_ = ssthresh_;
  ca_acc_ = 0;
  notify_cwnd(CwndEventKind::kLoss, cwnd_);
}

void RenoCc::on_rto() {
  ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2);
  cwnd_ = 1;
  ca_acc_ = 0;
  notify_cwnd(CwndEventKind::kRto, cwnd_);
}

void LiaCoupling::remove_member(LiaCc* cc) { std::erase(members_, cc); }

double LiaCoupling::alpha() const {
  // RFC 6356: alpha = cwnd_total * max_i(cwnd_i / rtt_i^2)
  //                               / (sum_i(cwnd_i / rtt_i))^2
  double total = 0.0;
  double max_term = 0.0;
  double sum_term = 0.0;
  for (const LiaCc* cc : members_) {
    const double w = static_cast<double>(cc->cwnd());
    const double rtt = std::max(1e-6, cc->srtt_hint().sec());
    total += w;
    max_term = std::max(max_term, w / (rtt * rtt));
    sum_term += w / rtt;
  }
  if (sum_term <= 0.0) return 1.0;
  return total * max_term / (sum_term * sum_term);
}

std::int64_t LiaCoupling::cwnd_total() const {
  std::int64_t total = 0;
  for (const LiaCc* cc : members_) total += cc->cwnd();
  return std::max<std::int64_t>(total, 1);
}

void LiaCc::on_ack(std::int64_t acked_segments, TimeNs /*now*/) {
  PROGMP_CHECK(acked_segments > 0);
  const std::int64_t before = cwnd_;
  for (std::int64_t i = 0; i < acked_segments; ++i) {
    if (cwnd_ < ssthresh_) {
      ++cwnd_;
      continue;
    }
    // RFC 6356 §4: per-ACK increase = min(alpha / cwnd_total, 1 / cwnd_i).
    const double alpha = group_->alpha();
    const auto total = static_cast<double>(group_->cwnd_total());
    const double inc =
        std::min(alpha / total, 1.0 / static_cast<double>(cwnd_));
    ca_acc_ += inc;
    if (ca_acc_ >= 1.0) {
      ca_acc_ -= 1.0;
      ++cwnd_;
    }
  }
  if (cwnd_ != before) notify_cwnd(CwndEventKind::kGrowth, cwnd_);
}

double CubicCc::target_at(TimeNs now) const {
  const double t = (now - epoch_start_).sec();
  const double dt = t - k_;
  return kC * dt * dt * dt + w_max_;
}

void CubicCc::on_ack(std::int64_t acked_segments, TimeNs now) {
  PROGMP_CHECK(acked_segments > 0);
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_segments;  // slow start
    notify_cwnd(CwndEventKind::kGrowth, cwnd_);
    return;
  }
  if (epoch_start_ < TimeNs{0}) {
    epoch_start_ = now;
    const double w = static_cast<double>(cwnd_);
    if (w_max_ < w) w_max_ = w;  // no prior reduction: probe from here
    k_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
  }
  // Cubic target plus the TCP-friendliness floor (RFC 8312 §4.2): in the
  // Reno-dominated region grow at least as fast as Reno would.
  const double t = (now - epoch_start_).sec();
  const double rtt = std::max(1e-4, srtt_hint_.sec());
  const double w_tcp =
      w_max_ * kBeta + 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * (t / rtt);
  const double target = std::max(target_at(now), w_tcp);
  const double w = static_cast<double>(cwnd_);
  if (target > w) {
    // Standard pacing of the increase: (target - cwnd)/cwnd per ACK.
    ca_acc_ += (target - w) / w * static_cast<double>(acked_segments);
    if (ca_acc_ >= 1.0) {
      const auto whole = static_cast<std::int64_t>(ca_acc_);
      cwnd_ += whole;
      ca_acc_ -= static_cast<double>(whole);
      notify_cwnd(CwndEventKind::kGrowth, cwnd_);
    }
  }
  // At or above target: hold (the cubic plateau around w_max).
}

void CubicCc::on_loss() {
  w_max_ = static_cast<double>(cwnd_);
  cwnd_ = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(cwnd_) * kBeta), 2);
  ssthresh_ = cwnd_;
  epoch_start_ = TimeNs{-1};
  ca_acc_ = 0.0;
  notify_cwnd(CwndEventKind::kLoss, cwnd_);
}

void CubicCc::on_rto() {
  w_max_ = static_cast<double>(cwnd_);
  ssthresh_ = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(cwnd_) * kBeta), 2);
  cwnd_ = 1;
  epoch_start_ = TimeNs{-1};
  ca_acc_ = 0.0;
  notify_cwnd(CwndEventKind::kRto, cwnd_);
}

void LiaCc::on_loss() {
  ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2);
  cwnd_ = ssthresh_;
  ca_acc_ = 0.0;
  notify_cwnd(CwndEventKind::kLoss, cwnd_);
}

void LiaCc::on_rto() {
  ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2);
  cwnd_ = 1;
  ca_acc_ = 0.0;
  notify_cwnd(CwndEventKind::kRto, cwnd_);
}

}  // namespace progmp::tcp
