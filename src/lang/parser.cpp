#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"

namespace progmp::lang {
namespace {

/// True for identifiers naming a scheduler register (R1..R99); the analyzer
/// range-checks against kNumRegisters.
bool parse_register_name(std::string_view name, int* index) {
  if (name.size() < 2 || name.size() > 3 || name[0] != 'R') return false;
  int value = 0;
  for (char c : name.substr(1)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < 1) return false;
  *index = value - 1;
  return true;
}

class Parser {
 public:
  Parser(std::string_view source, std::string name, DiagSink& diags)
      : diags_(diags) {
    program_.name = std::move(name);
    program_.source = std::string(source);
    tokens_ = lex(source, diags);
  }

  Program run() {
    while (!at(TokKind::kEof) && diags_.error_count() == 0) {
      const StmtId stmt = parse_stmt();
      if (stmt >= 0) program_.top.push_back(stmt);
    }
    return std::move(program_);
  }

 private:
  // ---- Token helpers -------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokKind kind) const { return cur().kind == kind; }
  Token advance() {
    // Never step past the trailing kEof: error-recovery paths advance
    // unconditionally and must stay inside the token stream.
    const Token token = tokens_[pos_];
    if (token.kind != TokKind::kEof) ++pos_;
    return token;
  }
  bool accept(TokKind kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }
  Token expect(TokKind kind) {
    if (at(kind)) return advance();
    diags_.error(cur().loc, std::string("expected ") + tok_kind_name(kind) +
                                ", found " + tok_kind_name(cur().kind));
    return Token{kind, cur().loc, {}, 0};
  }

  // ---- Node factories ------------------------------------------------------
  ExprId new_expr(ExprKind kind, SourceLoc loc) {
    Expr e;
    e.kind = kind;
    e.loc = loc;
    program_.exprs.push_back(std::move(e));
    return static_cast<ExprId>(program_.exprs.size() - 1);
  }
  StmtId new_stmt(StmtKind kind, SourceLoc loc) {
    Stmt s;
    s.kind = kind;
    s.loc = loc;
    program_.stmts.push_back(std::move(s));
    return static_cast<StmtId>(program_.stmts.size() - 1);
  }
  Expr& expr(ExprId id) { return program_.expr(id); }
  Stmt& stmt(StmtId id) { return program_.stmt(id); }

  // ---- Statements ----------------------------------------------------------
  StmtId parse_stmt() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::kVar:
        return parse_var_decl();
      case TokKind::kIf:
        return parse_if();
      case TokKind::kForeach:
        return parse_foreach();
      case TokKind::kSet:
        return parse_set();
      case TokKind::kDrop: {
        advance();
        expect(TokKind::kLParen);
        const ExprId value = parse_expr();
        expect(TokKind::kRParen);
        expect(TokKind::kSemi);
        const StmtId s = new_stmt(StmtKind::kDrop, loc);
        stmt(s).expr = value;
        return s;
      }
      case TokKind::kPrint: {
        advance();
        expect(TokKind::kLParen);
        const ExprId value = parse_expr();
        expect(TokKind::kRParen);
        expect(TokKind::kSemi);
        const StmtId s = new_stmt(StmtKind::kPrint, loc);
        stmt(s).expr = value;
        return s;
      }
      case TokKind::kReturn: {
        advance();
        expect(TokKind::kSemi);
        return new_stmt(StmtKind::kReturn, loc);
      }
      default: {
        const ExprId value = parse_expr();
        expect(TokKind::kSemi);
        const StmtId s = new_stmt(StmtKind::kExprStmt, loc);
        stmt(s).expr = value;
        return s;
      }
    }
  }

  StmtId parse_var_decl() {
    const SourceLoc loc = cur().loc;
    expect(TokKind::kVar);
    const Token name = expect(TokKind::kIdent);
    expect(TokKind::kAssign);
    const ExprId init = parse_expr();
    expect(TokKind::kSemi);
    const StmtId s = new_stmt(StmtKind::kVarDecl, loc);
    stmt(s).name = name.text;
    stmt(s).expr = init;
    return s;
  }

  StmtId parse_if() {
    const SourceLoc loc = cur().loc;
    expect(TokKind::kIf);
    expect(TokKind::kLParen);
    const ExprId cond = parse_expr();
    expect(TokKind::kRParen);
    std::vector<StmtId> then_body = parse_block();
    std::vector<StmtId> else_body;
    if (accept(TokKind::kElse)) {
      if (at(TokKind::kIf)) {
        else_body.push_back(parse_if());  // ELSE IF chains
      } else {
        else_body = parse_block();
      }
    }
    const StmtId s = new_stmt(StmtKind::kIf, loc);
    stmt(s).expr = cond;
    stmt(s).body = std::move(then_body);
    stmt(s).else_body = std::move(else_body);
    return s;
  }

  StmtId parse_foreach() {
    const SourceLoc loc = cur().loc;
    expect(TokKind::kForeach);
    expect(TokKind::kLParen);
    expect(TokKind::kVar);
    const Token name = expect(TokKind::kIdent);
    expect(TokKind::kIn);
    const ExprId list = parse_expr();
    expect(TokKind::kRParen);
    std::vector<StmtId> body = parse_block();
    const StmtId s = new_stmt(StmtKind::kForeach, loc);
    stmt(s).name = name.text;
    stmt(s).expr = list;
    stmt(s).body = std::move(body);
    return s;
  }

  StmtId parse_set() {
    const SourceLoc loc = cur().loc;
    expect(TokKind::kSet);
    expect(TokKind::kLParen);
    const Token reg = expect(TokKind::kIdent);
    int reg_index = -1;
    if (!parse_register_name(reg.text, &reg_index)) {
      diags_.error(reg.loc, "SET expects a register (R1..R" +
                                std::to_string(kNumRegisters) + "), found '" +
                                reg.text + "'");
    }
    expect(TokKind::kComma);
    const ExprId value = parse_expr();
    expect(TokKind::kRParen);
    expect(TokKind::kSemi);
    const StmtId s = new_stmt(StmtKind::kSet, loc);
    stmt(s).int_value = reg_index;
    stmt(s).expr = value;
    return s;
  }

  std::vector<StmtId> parse_block() {
    std::vector<StmtId> body;
    expect(TokKind::kLBrace);
    while (!at(TokKind::kRBrace) && !at(TokKind::kEof) &&
           diags_.error_count() == 0) {
      body.push_back(parse_stmt());
    }
    expect(TokKind::kRBrace);
    return body;
  }

  // ---- Expressions (precedence climbing) ------------------------------------
  ExprId parse_expr() { return parse_or(); }

  ExprId parse_or() {
    ExprId lhs = parse_and();
    while (at(TokKind::kOr)) {
      const SourceLoc loc = advance().loc;
      const ExprId rhs = parse_and();
      const ExprId node = new_expr(ExprKind::kBinary, loc);
      expr(node).bin_op = BinOp::kOr;
      expr(node).a = lhs;
      expr(node).b = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprId parse_and() {
    ExprId lhs = parse_not();
    while (at(TokKind::kAnd)) {
      const SourceLoc loc = advance().loc;
      const ExprId rhs = parse_not();
      const ExprId node = new_expr(ExprKind::kBinary, loc);
      expr(node).bin_op = BinOp::kAnd;
      expr(node).a = lhs;
      expr(node).b = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprId parse_not() {
    if (at(TokKind::kNot) || at(TokKind::kBang)) {
      const SourceLoc loc = advance().loc;
      const ExprId operand = parse_not();
      const ExprId node = new_expr(ExprKind::kUnary, loc);
      expr(node).un_op = UnOp::kNot;
      expr(node).a = operand;
      return node;
    }
    return parse_cmp();
  }

  ExprId parse_cmp() {
    ExprId lhs = parse_add();
    BinOp op;
    switch (cur().kind) {
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      case TokKind::kEq: op = BinOp::kEq; break;
      case TokKind::kNe: op = BinOp::kNe; break;
      default:
        return lhs;
    }
    const SourceLoc loc = advance().loc;
    const ExprId rhs = parse_add();
    const ExprId node = new_expr(ExprKind::kBinary, loc);
    expr(node).bin_op = op;
    expr(node).a = lhs;
    expr(node).b = rhs;
    return node;
  }

  ExprId parse_add() {
    ExprId lhs = parse_mul();
    while (at(TokKind::kPlus) || at(TokKind::kMinus)) {
      const BinOp op = at(TokKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      const SourceLoc loc = advance().loc;
      const ExprId rhs = parse_mul();
      const ExprId node = new_expr(ExprKind::kBinary, loc);
      expr(node).bin_op = op;
      expr(node).a = lhs;
      expr(node).b = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprId parse_mul() {
    ExprId lhs = parse_unary();
    while (at(TokKind::kStar) || at(TokKind::kSlash) ||
           at(TokKind::kPercent)) {
      BinOp op = BinOp::kMul;
      if (at(TokKind::kSlash)) op = BinOp::kDiv;
      if (at(TokKind::kPercent)) op = BinOp::kMod;
      const SourceLoc loc = advance().loc;
      const ExprId rhs = parse_unary();
      const ExprId node = new_expr(ExprKind::kBinary, loc);
      expr(node).bin_op = op;
      expr(node).a = lhs;
      expr(node).b = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprId parse_unary() {
    if (at(TokKind::kMinus)) {
      const SourceLoc loc = advance().loc;
      const ExprId operand = parse_unary();
      const ExprId node = new_expr(ExprKind::kUnary, loc);
      expr(node).un_op = UnOp::kNeg;
      expr(node).a = operand;
      return node;
    }
    return parse_postfix();
  }

  ExprId parse_postfix() {
    ExprId base = parse_primary();
    while (accept(TokKind::kDot)) {
      base = parse_member(base);
    }
    return base;
  }

  /// One `.MEMBER` or `.METHOD(...)` application on `base`.
  ExprId parse_member(ExprId base) {
    const Token name = expect(TokKind::kIdent);
    const SourceLoc loc = name.loc;

    if (name.text == "FILTER" || name.text == "MIN" || name.text == "MAX" ||
        name.text == "SUM") {
      expect(TokKind::kLParen);
      const Token param = expect(TokKind::kIdent);
      expect(TokKind::kArrow);
      const ExprId body = parse_expr();
      expect(TokKind::kRParen);
      ExprKind kind = ExprKind::kFilter;
      if (name.text == "MIN") kind = ExprKind::kMinBy;
      if (name.text == "MAX") kind = ExprKind::kMaxBy;
      if (name.text == "SUM") kind = ExprKind::kSumBy;
      const ExprId node = new_expr(kind, loc);
      expr(node).a = base;
      expr(node).b = body;
      expr(node).name = param.text;
      return node;
    }
    if (name.text == "COUNT" || name.text == "EMPTY" ||
        name.text == "TOP") {
      ExprKind kind = ExprKind::kCount;
      if (name.text == "EMPTY") kind = ExprKind::kEmpty;
      if (name.text == "TOP") kind = ExprKind::kTop;
      const ExprId node = new_expr(kind, loc);
      expr(node).a = base;
      return node;
    }
    if (name.text == "POP") {
      expect(TokKind::kLParen);
      expect(TokKind::kRParen);
      const ExprId node = new_expr(ExprKind::kPop, loc);
      expr(node).a = base;
      return node;
    }
    if (name.text == "GET") {
      expect(TokKind::kLParen);
      const ExprId index = parse_expr();
      expect(TokKind::kRParen);
      const ExprId node = new_expr(ExprKind::kGet, loc);
      expr(node).a = base;
      expr(node).b = index;
      return node;
    }
    if (name.text == "PUSH") {
      expect(TokKind::kLParen);
      const ExprId packet = parse_expr();
      expect(TokKind::kRParen);
      const ExprId node = new_expr(ExprKind::kPush, loc);
      expr(node).a = base;
      expr(node).b = packet;
      return node;
    }
    if (name.text == "HAS_WINDOW_FOR") {
      expect(TokKind::kLParen);
      const ExprId packet = parse_expr();
      expect(TokKind::kRParen);
      const ExprId node = new_expr(ExprKind::kHasWindowFor, loc);
      expr(node).a = base;
      expr(node).b = packet;
      return node;
    }

    // Plain property (possibly with one argument, e.g. SENT_ON(sbf)); the
    // analyzer resolves it against the receiver type.
    const ExprId node = new_expr(ExprKind::kMember, loc);
    expr(node).a = base;
    expr(node).name = name.text;
    if (accept(TokKind::kLParen)) {
      expr(node).b = parse_expr();
      expect(TokKind::kRParen);
    }
    return node;
  }

  ExprId parse_primary() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::kIntLit: {
        const Token tok = advance();
        const ExprId node = new_expr(ExprKind::kIntLit, loc);
        expr(node).int_value = tok.int_value;
        return node;
      }
      case TokKind::kTrue:
      case TokKind::kFalse: {
        const bool value = advance().kind == TokKind::kTrue;
        const ExprId node = new_expr(ExprKind::kBoolLit, loc);
        expr(node).int_value = value ? 1 : 0;
        return node;
      }
      case TokKind::kNull:
        advance();
        return new_expr(ExprKind::kNullLit, loc);
      case TokKind::kLParen: {
        advance();
        const ExprId inner = parse_expr();
        expect(TokKind::kRParen);
        return inner;
      }
      case TokKind::kIdent: {
        const Token tok = advance();
        if (tok.text == "SUBFLOWS") return new_expr(ExprKind::kSubflows, loc);
        if (tok.text == "Q" || tok.text == "QU" || tok.text == "RQ") {
          const ExprId node = new_expr(ExprKind::kQueue, loc);
          expr(node).int_value = tok.text == "Q" ? 0 : (tok.text == "QU" ? 1 : 2);
          return node;
        }
        if (tok.text == "CURRENT_TIME_MS") {
          return new_expr(ExprKind::kCurrentTimeMs, loc);
        }
        int reg_index = -1;
        if (parse_register_name(tok.text, &reg_index)) {
          const ExprId node = new_expr(ExprKind::kRegister, loc);
          expr(node).int_value = reg_index;
          return node;
        }
        const ExprId node = new_expr(ExprKind::kVarRef, loc);
        expr(node).name = tok.text;
        return node;
      }
      default:
        diags_.error(loc, std::string("expected expression, found ") +
                              tok_kind_name(cur().kind));
        advance();
        return new_expr(ExprKind::kNullLit, loc);
    }
  }

  DiagSink& diags_;
  Program program_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source, std::string name, DiagSink& diags) {
  return Parser(source, std::move(name), diags).run();
}

}  // namespace progmp::lang
