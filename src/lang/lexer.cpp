#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace progmp::lang {
namespace {

const std::unordered_map<std::string_view, TokKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokKind> table = {
      {"VAR", TokKind::kVar},       {"IF", TokKind::kIf},
      {"ELSE", TokKind::kElse},     {"FOREACH", TokKind::kForeach},
      {"IN", TokKind::kIn},         {"SET", TokKind::kSet},
      {"DROP", TokKind::kDrop},     {"RETURN", TokKind::kReturn},
      {"PRINT", TokKind::kPrint},   {"AND", TokKind::kAnd},
      {"OR", TokKind::kOr},         {"NOT", TokKind::kNot},
      {"NULL", TokKind::kNull},     {"TRUE", TokKind::kTrue},
      {"FALSE", TokKind::kFalse},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view src, DiagSink& diags) : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      Token tok = next();
      const bool eof = tok.kind == TokKind::kEof;
      out.push_back(std::move(tok));
      if (eof) break;
    }
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc loc() const { return {line_, col_}; }

  void skip_trivia() {
    for (;;) {
      if (at_end()) return;
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        const SourceLoc start = loc();
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(TokKind kind, SourceLoc at) { return Token{kind, at, {}, 0}; }

  Token next() {
    if (at_end()) return make(TokKind::kEof, loc());
    const SourceLoc at = loc();
    const char c = advance();

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = c - '0';
      bool overflow = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        const int digit = advance() - '0';
        if (value > (INT64_MAX - digit) / 10) overflow = true;
        if (!overflow) value = value * 10 + digit;
      }
      if (overflow) {
        diags_.error(at, "integer literal overflows 64 bits");
        return Token{TokKind::kError, at, "overflow", 0};
      }
      Token tok = make(TokKind::kIntLit, at);
      tok.int_value = value;
      return tok;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident(1, c);
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        ident += advance();
      }
      if (auto it = keyword_table().find(ident); it != keyword_table().end()) {
        return make(it->second, at);
      }
      Token tok = make(TokKind::kIdent, at);
      tok.text = std::move(ident);
      return tok;
    }

    switch (c) {
      case '(':
        return make(TokKind::kLParen, at);
      case ')':
        return make(TokKind::kRParen, at);
      case '{':
        return make(TokKind::kLBrace, at);
      case '}':
        return make(TokKind::kRBrace, at);
      case ';':
        return make(TokKind::kSemi, at);
      case ',':
        return make(TokKind::kComma, at);
      case '.':
        return make(TokKind::kDot, at);
      case '+':
        return make(TokKind::kPlus, at);
      case '-':
        return make(TokKind::kMinus, at);
      case '*':
        return make(TokKind::kStar, at);
      case '/':
        return make(TokKind::kSlash, at);
      case '%':
        return make(TokKind::kPercent, at);
      case '<':
        if (peek() == '=') {
          advance();
          return make(TokKind::kLe, at);
        }
        return make(TokKind::kLt, at);
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokKind::kGe, at);
        }
        return make(TokKind::kGt, at);
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokKind::kEq, at);
        }
        if (peek() == '>') {
          advance();
          return make(TokKind::kArrow, at);
        }
        return make(TokKind::kAssign, at);
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokKind::kNe, at);
        }
        return make(TokKind::kBang, at);
      default:
        break;
    }
    diags_.error(at, std::string("unexpected character '") + c + "'");
    return Token{TokKind::kError, at, std::string(1, c), 0};
  }

  std::string_view src_;
  DiagSink& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagSink& diags) {
  return Lexer(source, diags).run();
}

const char* tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::kEof: return "end of input";
    case TokKind::kError: return "invalid token";
    case TokKind::kIdent: return "identifier";
    case TokKind::kIntLit: return "integer";
    case TokKind::kVar: return "VAR";
    case TokKind::kIf: return "IF";
    case TokKind::kElse: return "ELSE";
    case TokKind::kForeach: return "FOREACH";
    case TokKind::kIn: return "IN";
    case TokKind::kSet: return "SET";
    case TokKind::kDrop: return "DROP";
    case TokKind::kReturn: return "RETURN";
    case TokKind::kPrint: return "PRINT";
    case TokKind::kAnd: return "AND";
    case TokKind::kOr: return "OR";
    case TokKind::kNot: return "NOT";
    case TokKind::kNull: return "NULL";
    case TokKind::kTrue: return "TRUE";
    case TokKind::kFalse: return "FALSE";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kSemi: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kDot: return "'.'";
    case TokKind::kArrow: return "'=>'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kLt: return "'<'";
    case TokKind::kGt: return "'>'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGe: return "'>='";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kBang: return "'!'";
  }
  return "?";
}

}  // namespace progmp::lang
