#include "lang/analyzer.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "core/check.hpp"
#include "lang/props.hpp"

namespace progmp::lang {
namespace {

/// Where an expression appears — controls whether side effects (POP) are
/// permitted.
enum class EffectCtx {
  kPure,        ///< conditions, predicates, indices: no side effects
  kConsumer,    ///< VAR initializer / PUSH / DROP argument: POP allowed
  kStatement,   ///< expression statement position: PUSH calls only
};

class Analyzer {
 public:
  Analyzer(Program& program, DiagSink& diags)
      : program_(program), diags_(diags) {}

  bool run() {
    push_scope();
    for (StmtId id : program_.top) check_stmt(id);
    pop_scope();
    program_.frame_slots = next_slot_;
    return diags_.ok();
  }

 private:
  struct Binding {
    std::int32_t slot;
    Type type;
  };

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  Binding* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto found = it->find(name); found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  std::int32_t declare(const std::string& name, Type type, SourceLoc loc) {
    if (lookup(name) != nullptr) {
      diags_.error(loc, "variable '" + name +
                            "' is already defined — variables are "
                            "single-assignment and shadowing is not allowed");
    }
    const std::int32_t slot = next_slot_++;
    scopes_.back().insert_or_assign(name, Binding{slot, type});
    return slot;
  }

  Expr& expr(ExprId id) { return program_.expr(id); }
  Stmt& stmt(StmtId id) { return program_.stmt(id); }

  void expect_type(ExprId id, Type want, const char* what) {
    const Type got = expr(id).type;
    if (got != want && got != Type::kInvalid) {
      diags_.error(expr(id).loc, std::string(what) + " must be " +
                                     type_name(want) + ", found " +
                                     type_name(got));
    }
  }

  // ---- Statements ----------------------------------------------------------
  void check_stmt(StmtId id) {
    Stmt& s = stmt(id);
    switch (s.kind) {
      case StmtKind::kVarDecl: {
        check_expr(s.expr, EffectCtx::kConsumer);
        const Type t = expr(s.expr).type;
        if (t == Type::kPacketQueue) {
          diags_.error(s.loc,
                       "packet queues cannot be stored in variables; chain "
                       "the access (e.g. Q.FILTER(...).TOP) or store the "
                       "packet instead");
        } else if (t == Type::kVoid || t == Type::kInvalid) {
          if (t == Type::kVoid) {
            diags_.error(s.loc, "initializer has no value");
          }
        } else if (t == Type::kNull) {
          diags_.error(s.loc,
                       "cannot infer a type from NULL; initialize the "
                       "variable from a packet or subflow expression");
        }
        s.var_slot = declare(s.name, t, s.loc);
        break;
      }
      case StmtKind::kIf: {
        check_expr(s.expr, EffectCtx::kPure);
        expect_type(s.expr, Type::kBool, "IF condition");
        push_scope();
        for (StmtId b : s.body) check_stmt(b);
        pop_scope();
        push_scope();
        for (StmtId b : s.else_body) check_stmt(b);
        pop_scope();
        break;
      }
      case StmtKind::kForeach: {
        check_expr(s.expr, EffectCtx::kPure);
        if (expr(s.expr).type != Type::kSubflowList &&
            expr(s.expr).type != Type::kInvalid) {
          diags_.error(s.loc, "FOREACH iterates subflow lists, found " +
                                  std::string(type_name(expr(s.expr).type)));
        }
        push_scope();
        s.var_slot = declare(s.name, Type::kSubflow, s.loc);
        for (StmtId b : s.body) check_stmt(b);
        pop_scope();
        break;
      }
      case StmtKind::kSet: {
        if ((s.int_value < 0 || s.int_value >= kNumRegisters) &&
            !is_env_register(s.int_value)) {
          diags_.error(s.loc, "register out of range (R1..R" +
                                  std::to_string(kNumRegisters) +
                                  ", or environment registers R91-R94)");
        }
        check_expr(s.expr, EffectCtx::kPure);
        expect_type(s.expr, Type::kInt, "SET value");
        break;
      }
      case StmtKind::kDrop: {
        check_expr(s.expr, EffectCtx::kConsumer);
        expect_type(s.expr, Type::kPacket, "DROP argument");
        break;
      }
      case StmtKind::kPrint: {
        check_expr(s.expr, EffectCtx::kPure);
        expect_type(s.expr, Type::kInt, "PRINT argument");
        break;
      }
      case StmtKind::kReturn:
        break;
      case StmtKind::kExprStmt: {
        check_expr(s.expr, EffectCtx::kStatement);
        if (expr(s.expr).kind != ExprKind::kPush &&
            expr(s.expr).type != Type::kInvalid) {
          diags_.error(s.loc,
                       "only PUSH calls may stand alone as statements — side "
                       "effects are restricted to PUSH operations");
        }
        break;
      }
    }
  }

  // ---- Expressions ---------------------------------------------------------
  void check_expr(ExprId id, EffectCtx effects) {
    Expr& e = expr(id);
    switch (e.kind) {
      case ExprKind::kIntLit:
        e.type = Type::kInt;
        break;
      case ExprKind::kBoolLit:
        e.type = Type::kBool;
        break;
      case ExprKind::kNullLit:
        e.type = Type::kNull;
        break;
      case ExprKind::kRegister:
        if ((e.int_value < 0 || e.int_value >= kNumRegisters) &&
            !is_env_register(e.int_value)) {
          diags_.error(e.loc, "register out of range (R1..R" +
                                  std::to_string(kNumRegisters) +
                                  ", or environment registers R91-R94)");
        }
        e.type = Type::kInt;
        break;
      case ExprKind::kVarRef: {
        Binding* binding = lookup(e.name);
        if (binding == nullptr) {
          diags_.error(e.loc, "unknown identifier '" + e.name + "'");
          e.type = Type::kInvalid;
        } else {
          e.var_slot = binding->slot;
          e.type = binding->type;
        }
        break;
      }
      case ExprKind::kSubflows:
        e.type = Type::kSubflowList;
        break;
      case ExprKind::kQueue:
        e.type = Type::kPacketQueue;
        break;
      case ExprKind::kCurrentTimeMs:
        e.type = Type::kInt;
        break;
      case ExprKind::kUnary: {
        check_expr(e.a, effects_for_operand(effects));
        if (e.un_op == UnOp::kNeg) {
          expect_type(e.a, Type::kInt, "operand of unary '-'");
          e.type = Type::kInt;
        } else {
          expect_type(e.a, Type::kBool, "operand of NOT");
          e.type = Type::kBool;
        }
        break;
      }
      case ExprKind::kBinary:
        check_binary(id, effects);
        break;
      case ExprKind::kFilter:
      case ExprKind::kMinBy:
      case ExprKind::kMaxBy:
      case ExprKind::kSumBy:
        check_comprehension(id, effects);
        break;
      case ExprKind::kCount:
      case ExprKind::kEmpty: {
        check_expr(e.a, effects_for_operand(effects));
        const Type base = expr(e.a).type;
        if (base != Type::kSubflowList && base != Type::kPacketQueue &&
            base != Type::kInvalid) {
          diags_.error(e.loc, "COUNT/EMPTY applies to subflow lists and "
                              "packet queues");
        }
        e.type = e.kind == ExprKind::kCount ? Type::kInt : Type::kBool;
        break;
      }
      case ExprKind::kGet: {
        check_expr(e.a, effects_for_operand(effects));
        check_expr(e.b, EffectCtx::kPure);
        expect_type(e.a, Type::kSubflowList, "GET receiver");
        expect_type(e.b, Type::kInt, "GET index");
        e.type = Type::kSubflow;
        break;
      }
      case ExprKind::kTop: {
        check_expr(e.a, effects_for_operand(effects));
        expect_type(e.a, Type::kPacketQueue, "TOP receiver");
        e.type = Type::kPacket;
        break;
      }
      case ExprKind::kPop: {
        check_expr(e.a, EffectCtx::kPure);
        expect_type(e.a, Type::kPacketQueue, "POP receiver");
        if (expr(e.a).kind != ExprKind::kQueue) {
          diags_.error(e.loc,
                       "POP applies to the base queues Q/QU/RQ only; to take "
                       "a filtered packet, select it with FILTER(...).TOP");
        }
        if (effects != EffectCtx::kConsumer) {
          diags_.error(e.loc,
                       "POP has a side effect and may only appear as a VAR "
                       "initializer or as the argument of PUSH/DROP");
        }
        e.type = Type::kPacket;
        break;
      }
      case ExprKind::kSbfProp:
      case ExprKind::kPktProp:
        PROGMP_UNREACHABLE("property nodes are created by the analyzer");
        break;
      case ExprKind::kMember:
        check_member(id, effects);
        break;
      case ExprKind::kHasWindowFor: {
        check_expr(e.a, effects_for_operand(effects));
        check_expr(e.b, EffectCtx::kPure);
        expect_type(e.a, Type::kSubflow, "HAS_WINDOW_FOR receiver");
        expect_type(e.b, Type::kPacket, "HAS_WINDOW_FOR argument");
        e.type = Type::kBool;
        break;
      }
      case ExprKind::kPush: {
        if (effects != EffectCtx::kStatement) {
          diags_.error(e.loc, "PUSH may only appear as a statement");
        }
        check_expr(e.a, EffectCtx::kPure);
        check_expr(e.b, EffectCtx::kConsumer);
        expect_type(e.a, Type::kSubflow, "PUSH receiver");
        expect_type(e.b, Type::kPacket, "PUSH argument");
        e.type = Type::kVoid;
        break;
      }
    }
  }

  /// Receivers of chained operations keep the consumer context only for the
  /// directly consumed value; sub-expressions like filter bases stay pure.
  static EffectCtx effects_for_operand(EffectCtx /*outer*/) {
    return EffectCtx::kPure;
  }

  void check_binary(ExprId id, EffectCtx effects) {
    Expr& e = expr(id);
    check_expr(e.a, effects_for_operand(effects));
    check_expr(e.b, effects_for_operand(effects));
    const Type ta = expr(e.a).type;
    const Type tb = expr(e.b).type;
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
        expect_type(e.a, Type::kInt, "arithmetic operand");
        expect_type(e.b, Type::kInt, "arithmetic operand");
        e.type = Type::kInt;
        break;
      case BinOp::kLt:
      case BinOp::kGt:
      case BinOp::kLe:
      case BinOp::kGe:
        expect_type(e.a, Type::kInt, "comparison operand");
        expect_type(e.b, Type::kInt, "comparison operand");
        e.type = Type::kBool;
        break;
      case BinOp::kEq:
      case BinOp::kNe: {
        const bool nullable_a =
            ta == Type::kPacket || ta == Type::kSubflow || ta == Type::kNull;
        const bool nullable_b =
            tb == Type::kPacket || tb == Type::kSubflow || tb == Type::kNull;
        const bool ok =
            (ta == tb && (ta == Type::kInt || ta == Type::kBool ||
                          ta == Type::kPacket || ta == Type::kSubflow)) ||
            (nullable_a && nullable_b &&
             (ta == Type::kNull || tb == Type::kNull));
        if (!ok && ta != Type::kInvalid && tb != Type::kInvalid) {
          diags_.error(e.loc, std::string("cannot compare ") + type_name(ta) +
                                  " with " + type_name(tb));
        }
        e.type = Type::kBool;
        break;
      }
      case BinOp::kAnd:
      case BinOp::kOr:
        expect_type(e.a, Type::kBool, "logical operand");
        expect_type(e.b, Type::kBool, "logical operand");
        e.type = Type::kBool;
        break;
    }
  }

  void check_comprehension(ExprId id, EffectCtx effects) {
    Expr& e = expr(id);
    check_expr(e.a, effects_for_operand(effects));
    const Type base = expr(e.a).type;
    Type elem = Type::kInvalid;
    if (base == Type::kSubflowList) {
      elem = Type::kSubflow;
    } else if (base == Type::kPacketQueue) {
      elem = Type::kPacket;
    } else if (base != Type::kInvalid) {
      diags_.error(e.loc,
                   "FILTER/MIN/MAX apply to subflow lists and packet queues");
    }

    push_scope();
    e.var_slot = declare(e.name, elem, e.loc);
    check_expr(e.b, EffectCtx::kPure);  // predicates must be pure
    pop_scope();

    if (e.kind == ExprKind::kFilter) {
      expect_type(e.b, Type::kBool, "FILTER predicate");
      e.type = base;
    } else if (e.kind == ExprKind::kSumBy) {
      expect_type(e.b, Type::kInt, "SUM key");
      e.type = Type::kInt;
    } else {
      expect_type(e.b, Type::kInt, "MIN/MAX key");
      e.type = elem == Type::kSubflow ? Type::kSubflow : Type::kPacket;
    }
  }

  void check_member(ExprId id, EffectCtx effects) {
    Expr& e = expr(id);
    check_expr(e.a, effects_for_operand(effects));
    const Type base = expr(e.a).type;
    if (base == Type::kSubflow) {
      if (auto info = lookup_sbf_prop(e.name)) {
        if (e.b != kNoExpr) {
          diags_.error(e.loc, "property '" + e.name + "' takes no argument");
        }
        e.kind = ExprKind::kSbfProp;
        e.sbf_prop = info->prop;
        e.type = info->type;
        return;
      }
      diags_.error(e.loc, "unknown subflow property '" + e.name + "'");
    } else if (base == Type::kPacket) {
      if (auto info = lookup_pkt_prop(e.name)) {
        if (info->takes_subflow_arg) {
          if (e.b == kNoExpr) {
            diags_.error(e.loc,
                         "property '" + e.name + "' needs a subflow argument");
          } else {
            check_expr(e.b, EffectCtx::kPure);
            expect_type(e.b, Type::kSubflow, "SENT_ON argument");
          }
        } else if (e.b != kNoExpr) {
          diags_.error(e.loc, "property '" + e.name + "' takes no argument");
        }
        e.kind = ExprKind::kPktProp;
        e.pkt_prop = info->prop;
        e.type = info->type;
        return;
      }
      diags_.error(e.loc, "unknown packet property '" + e.name + "'");
    } else if (base != Type::kInvalid) {
      diags_.error(e.loc, std::string("type ") + type_name(base) +
                              " has no property '" + e.name + "'");
    }
    e.type = Type::kInvalid;
  }

  Program& program_;
  DiagSink& diags_;
  std::vector<std::unordered_map<std::string, Binding>> scopes_;
  std::int32_t next_slot_ = 0;
};

}  // namespace

bool analyze(Program& program, DiagSink& diags) {
  return Analyzer(program, diags).run();
}

}  // namespace progmp::lang
