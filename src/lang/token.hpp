// Token definitions for the ProgMP scheduler specification language.
#pragma once

#include <cstdint>
#include <string>

#include "core/diag.hpp"

namespace progmp::lang {

enum class TokKind {
  kEof,
  kError,

  kIdent,     // identifiers, property names, keywords are resolved later
  kIntLit,    // integer literal

  // Keywords (upper-case, as in the paper's listings).
  kVar,
  kIf,
  kElse,
  kForeach,
  kIn,
  kSet,
  kDrop,
  kReturn,
  kPrint,
  kAnd,
  kOr,
  kNot,
  kNull,
  kTrue,
  kFalse,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kSemi,
  kComma,
  kDot,
  kArrow,   // =>
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,  // ==
  kNe,  // !=
  kBang,
};

struct Token {
  TokKind kind = TokKind::kEof;
  SourceLoc loc;
  std::string text;        // identifier spelling / error detail
  std::int64_t int_value = 0;
};

/// Spelling of a token kind for diagnostics.
const char* tok_kind_name(TokKind kind);

}  // namespace progmp::lang
