// Lexer for the ProgMP specification language.
//
// Supports `/* ... */` and `//` comments so spec strings embedded in C++ can
// be annotated the way the paper annotates its listings.
#pragma once

#include <string_view>
#include <vector>

#include "core/diag.hpp"
#include "lang/token.hpp"

namespace progmp::lang {

/// Tokenizes the whole input. Lexical errors are reported to `diags` and
/// produce kError tokens; the stream always ends with kEof.
std::vector<Token> lex(std::string_view source, DiagSink& diags);

}  // namespace progmp::lang
