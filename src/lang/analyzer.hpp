// Static analysis for ProgMP specifications.
//
// Implements the language rules of §3.3:
//  * implicit static typing — each variable has the type of its initializer,
//  * single assignment — guaranteed by the grammar (no assignment statement),
//  * side effects restricted to PUSH/DROP/SET positions: POP may only appear
//    as a VAR initializer or as the argument of PUSH/DROP; predicates of
//    FILTER/MIN/MAX and all conditions are checked pure,
//  * PUSH is a statement, never a nested expression,
//  * packet-queue values cannot be stored in variables (queues mutate via
//    POP; storing them would break the snapshot semantics that make the
//    three execution back ends equivalent) — store the packet instead,
//  * FOREACH iterates subflow lists only.
//
// On success every expression carries its type and every identifier is
// resolved to a frame slot.
#pragma once

#include "core/diag.hpp"
#include "lang/ast.hpp"

namespace progmp::lang {

/// Analyzes `program` in place. Returns true if the program is valid.
bool analyze(Program& program, DiagSink& diags);

}  // namespace progmp::lang
