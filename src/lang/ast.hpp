// Abstract syntax for ProgMP scheduler specifications.
//
// Nodes live in flat arenas inside `Program` and reference each other by
// index — compact, cache-friendly, and convenient for the three execution
// back ends that all traverse the same tree. The analyzer decorates
// expressions with their static type and resolves identifiers to frame
// slots; the single-assignment / immutability rules of §3.3 mean a resolved
// program needs no further symbol machinery at run time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/diag.hpp"

namespace progmp::lang {

using ExprId = std::int32_t;
using StmtId = std::int32_t;
inline constexpr ExprId kNoExpr = -1;

/// Static types of the language (Table 1: int, bool, packet, subflow,
/// subflow list, packet queue). kNull is the type of the NULL literal and
/// unifies with packet/subflow in comparisons.
enum class Type : std::uint8_t {
  kInvalid,
  kInt,
  kBool,
  kPacket,
  kSubflow,
  kSubflowList,
  kPacketQueue,
  kNull,
  kVoid,
};

const char* type_name(Type t);

/// Subflow properties exposed to specifications. Time-valued properties are
/// in microseconds; rates in bytes/second.
enum class SbfProp : std::uint8_t {
  kRtt,            // smoothed RTT (us)
  kRttVar,         // RTT mean deviation (us)
  kRttMin,         // minimum RTT sample (us)
  kRttLast,        // latest raw RTT sample (us)
  kCwnd,           // congestion window (segments)
  kSkbsInFlight,   // transmitted, unacked segments
  kQueued,         // scheduled, not yet transmitted segments
  kIsBackup,       // bool
  kIsPreferred,    // bool: application preference (cheap vs metered path)
  kTsqThrottled,   // bool
  kLossy,          // bool: in loss recovery
  kId,             // stable slot index
  kMss,            // bytes
  kRate,           // observed delivery rate (bytes/sec)
  kCapacity,       // cwnd*mss/srtt (bytes/sec)
  kAgeMs,          // ms since establishment
  kLastTxAgeMs,    // ms since last transmission (probing schedulers)
  kCwndFree,       // bool: cwnd > in_flight + queued
};

/// Number of SbfProp values — the verifier proves helper prop arguments
/// stay inside [0, kNumSbfProps).
inline constexpr int kNumSbfProps = static_cast<int>(SbfProp::kCwndFree) + 1;

/// Packet properties.
enum class PktProp : std::uint8_t {
  kSize,       // payload bytes
  kSeq,        // meta sequence number
  kProp1,      // application property 1 (e.g. content class)
  kProp2,      // application property 2
  kFlowEnd,    // bool: application end-of-flow signal
  kAgeMs,      // ms since the packet entered Q
  kSentCount,  // number of subflows it was scheduled on
  kSentOn,     // bool: scheduled on the given subflow (takes an argument)
};

/// Number of PktProp values (see kNumSbfProps).
inline constexpr int kNumPktProps = static_cast<int>(PktProp::kSentOn) + 1;

enum class UnOp : std::uint8_t { kNeg, kNot };
enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class ExprKind : std::uint8_t {
  kIntLit,        // int_value
  kBoolLit,       // int_value 0/1
  kNullLit,
  kRegister,      // int_value = register index (R1 -> 0)
  kVarRef,        // name; analyzer sets int_value = frame slot
  kSubflows,      // the SUBFLOWS set
  kQueue,         // int_value = QueueId (0=Q, 1=QU, 2=RQ)
  kCurrentTimeMs,
  kUnary,         // un_op, a
  kBinary,        // bin_op, a, b
  kFilter,        // a = base (list/queue), b = lambda body, name = param
  kMinBy,         // like kFilter, result is element
  kMaxBy,
  kSumBy,         // like kFilter, result is the int sum of the key
  kCount,         // a = list/queue
  kEmpty,         // a = list/queue
  kGet,           // a = list, b = index
  kTop,           // a = queue
  kPop,           // a = queue (bare queues only)
  kSbfProp,       // a = subflow, sbf_prop
  kPktProp,       // a = packet, pkt_prop, b = optional arg (SENT_ON)
  kHasWindowFor,  // a = subflow, b = packet
  kPush,          // a = subflow, b = packet (statement position only)
  kMember,        // parse-only: name member on a; analyzer rewrites it to
                  // kSbfProp / kPktProp once the receiver type is known
};

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  Type type = Type::kInvalid;  // set by the analyzer
  SourceLoc loc;
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;
  std::int64_t int_value = 0;
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  SbfProp sbf_prop = SbfProp::kRtt;
  PktProp pkt_prop = PktProp::kSize;
  std::string name;             // identifier / lambda parameter
  std::int32_t var_slot = -1;   // resolved frame slot (kVarRef, lambda param)
};

enum class StmtKind : std::uint8_t {
  kVarDecl,   // name, expr = initializer; var_slot resolved
  kIf,        // expr = condition, body = then, else_body
  kForeach,   // name = loop var, expr = subflow list, body
  kSet,       // int_value = register index, expr = value
  kDrop,      // expr = packet
  kPrint,     // expr = int
  kReturn,
  kExprStmt,  // expr (must be a PUSH call)
};

struct Stmt {
  StmtKind kind = StmtKind::kReturn;
  SourceLoc loc;
  ExprId expr = kNoExpr;
  std::vector<StmtId> body;
  std::vector<StmtId> else_body;
  std::int64_t int_value = 0;
  std::string name;
  std::int32_t var_slot = -1;
};

/// A parsed (and, after analysis, typed and resolved) specification.
struct Program {
  std::string name;    ///< scheduler name (for stats, bench tables)
  std::string source;  ///< original spec text
  std::vector<Expr> exprs;
  std::vector<Stmt> stmts;
  std::vector<StmtId> top;  ///< top-level statement list
  std::int32_t frame_slots = 0;  ///< variables + lambda params (analyzer)

  [[nodiscard]] const Expr& expr(ExprId id) const {
    return exprs[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Expr& expr(ExprId id) {
    return exprs[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Stmt& stmt(StmtId id) const {
    return stmts[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Stmt& stmt(StmtId id) {
    return stmts[static_cast<std::size_t>(id)];
  }
};

/// Number of scheduler registers addressable from specifications (R1..R8).
inline constexpr int kNumRegisters = 8;

/// Environment-maintained registers, far above the writable file on
/// purpose: R91 is the host's receive-memory pressure level, R92 the
/// receiver's D-SACK duplicate count, R93 the connection's RFC 8684
/// fallback state, R94 the installed program's quarantine state
/// (mptcp::kEnvRegMemPressure / kEnvRegDsackDups / kEnvRegFallback /
/// kEnvRegQuarantine). Specs may read them like any register; writes are
/// accepted by the analyzer and silently ignored by the runtime — the
/// environment owns their values.
inline constexpr int kEnvRegisterFirst = 90;  // R91
inline constexpr int kEnvRegisterLast = 93;   // R94
[[nodiscard]] inline constexpr bool is_env_register(int index) {
  return index >= kEnvRegisterFirst && index <= kEnvRegisterLast;
}

}  // namespace progmp::lang
