// Name tables for member properties/methods of the specification language —
// shared by the parser (name resolution) and the documentation tooling.
#pragma once

#include <optional>
#include <string_view>

#include "lang/ast.hpp"

namespace progmp::lang {

struct SbfPropInfo {
  SbfProp prop;
  Type type;  ///< kInt or kBool
};

struct PktPropInfo {
  PktProp prop;
  Type type;
  bool takes_subflow_arg;
};

/// Looks up a subflow property by spelling (e.g. "RTT", "IS_BACKUP").
std::optional<SbfPropInfo> lookup_sbf_prop(std::string_view name);

/// Looks up a packet property by spelling (e.g. "SIZE", "SENT_ON").
std::optional<PktPropInfo> lookup_pkt_prop(std::string_view name);

const char* sbf_prop_name(SbfProp p);
const char* pkt_prop_name(PktProp p);

}  // namespace progmp::lang
