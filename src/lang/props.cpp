#include "lang/props.hpp"

#include <unordered_map>

namespace progmp::lang {
namespace {

const std::unordered_map<std::string_view, SbfPropInfo>& sbf_table() {
  static const std::unordered_map<std::string_view, SbfPropInfo> table = {
      {"RTT", {SbfProp::kRtt, Type::kInt}},
      // Alias used in the paper's listings for the smoothed average.
      {"RTT_AVG", {SbfProp::kRtt, Type::kInt}},
      {"RTT_VAR", {SbfProp::kRttVar, Type::kInt}},
      {"RTT_MIN", {SbfProp::kRttMin, Type::kInt}},
      {"RTT_LAST", {SbfProp::kRttLast, Type::kInt}},
      {"CWND", {SbfProp::kCwnd, Type::kInt}},
      {"SKBS_IN_FLIGHT", {SbfProp::kSkbsInFlight, Type::kInt}},
      {"QUEUED", {SbfProp::kQueued, Type::kInt}},
      {"IS_BACKUP", {SbfProp::kIsBackup, Type::kBool}},
      {"IS_PREFERRED", {SbfProp::kIsPreferred, Type::kBool}},
      {"TSQ_THROTTLED", {SbfProp::kTsqThrottled, Type::kBool}},
      {"LOSSY", {SbfProp::kLossy, Type::kBool}},
      {"ID", {SbfProp::kId, Type::kInt}},
      {"MSS", {SbfProp::kMss, Type::kInt}},
      {"RATE", {SbfProp::kRate, Type::kInt}},
      {"CAPACITY", {SbfProp::kCapacity, Type::kInt}},
      {"AGE_MS", {SbfProp::kAgeMs, Type::kInt}},
      {"LAST_TX_AGE_MS", {SbfProp::kLastTxAgeMs, Type::kInt}},
      {"CWND_FREE", {SbfProp::kCwndFree, Type::kBool}},
  };
  return table;
}

const std::unordered_map<std::string_view, PktPropInfo>& pkt_table() {
  static const std::unordered_map<std::string_view, PktPropInfo> table = {
      {"SIZE", {PktProp::kSize, Type::kInt, false}},
      {"SEQ", {PktProp::kSeq, Type::kInt, false}},
      {"PROP1", {PktProp::kProp1, Type::kInt, false}},
      {"PROP2", {PktProp::kProp2, Type::kInt, false}},
      {"FLOW_END", {PktProp::kFlowEnd, Type::kBool, false}},
      {"AGE_MS", {PktProp::kAgeMs, Type::kInt, false}},
      {"SENT_COUNT", {PktProp::kSentCount, Type::kInt, false}},
      {"SENT_ON", {PktProp::kSentOn, Type::kBool, true}},
  };
  return table;
}

}  // namespace

std::optional<SbfPropInfo> lookup_sbf_prop(std::string_view name) {
  if (auto it = sbf_table().find(name); it != sbf_table().end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<PktPropInfo> lookup_pkt_prop(std::string_view name) {
  if (auto it = pkt_table().find(name); it != pkt_table().end()) {
    return it->second;
  }
  return std::nullopt;
}

const char* sbf_prop_name(SbfProp p) {
  switch (p) {
    case SbfProp::kRtt: return "RTT";
    case SbfProp::kRttVar: return "RTT_VAR";
    case SbfProp::kRttMin: return "RTT_MIN";
    case SbfProp::kRttLast: return "RTT_LAST";
    case SbfProp::kCwnd: return "CWND";
    case SbfProp::kSkbsInFlight: return "SKBS_IN_FLIGHT";
    case SbfProp::kQueued: return "QUEUED";
    case SbfProp::kIsBackup: return "IS_BACKUP";
    case SbfProp::kIsPreferred: return "IS_PREFERRED";
    case SbfProp::kTsqThrottled: return "TSQ_THROTTLED";
    case SbfProp::kLossy: return "LOSSY";
    case SbfProp::kId: return "ID";
    case SbfProp::kMss: return "MSS";
    case SbfProp::kRate: return "RATE";
    case SbfProp::kCapacity: return "CAPACITY";
    case SbfProp::kAgeMs: return "AGE_MS";
    case SbfProp::kLastTxAgeMs: return "LAST_TX_AGE_MS";
    case SbfProp::kCwndFree: return "CWND_FREE";
  }
  return "?";
}

const char* pkt_prop_name(PktProp p) {
  switch (p) {
    case PktProp::kSize: return "SIZE";
    case PktProp::kSeq: return "SEQ";
    case PktProp::kProp1: return "PROP1";
    case PktProp::kProp2: return "PROP2";
    case PktProp::kFlowEnd: return "FLOW_END";
    case PktProp::kAgeMs: return "AGE_MS";
    case PktProp::kSentCount: return "SENT_COUNT";
    case PktProp::kSentOn: return "SENT_ON";
  }
  return "?";
}

const char* type_name(Type t) {
  switch (t) {
    case Type::kInvalid: return "<invalid>";
    case Type::kInt: return "int";
    case Type::kBool: return "bool";
    case Type::kPacket: return "packet";
    case Type::kSubflow: return "subflow";
    case Type::kSubflowList: return "subflow list";
    case Type::kPacketQueue: return "packet queue";
    case Type::kNull: return "null";
    case Type::kVoid: return "void";
  }
  return "?";
}

}  // namespace progmp::lang
