// Recursive-descent parser for ProgMP specifications.
#pragma once

#include <string>
#include <string_view>

#include "core/diag.hpp"
#include "lang/ast.hpp"

namespace progmp::lang {

/// Parses `source` into a Program named `name`. On error the returned
/// program is partial; check `diags.ok()`.
Program parse(std::string_view source, std::string name, DiagSink& diags);

}  // namespace progmp::lang
