#!/usr/bin/env python3
"""Warn-only perf trend gate for the fleet and queue benches.

Diffs a fresh BENCH_fleet.json against the committed baseline
(bench/baselines/BENCH_fleet.json) and emits GitHub Actions ::warning::
annotations for any (scenario, conns) row whose events/sec regressed more
than the threshold (default 10%). The fleet/1024 row is the headline
number from the queue-layer refactor (EXPERIMENTS.md), so its warning is
called out explicitly.

With --queue it additionally diffs a fresh BENCH_queue.json against
bench/baselines/BENCH_queue.json, keyed on (op, repr, entries) over
ns_per_op (higher is worse). The queue threshold is looser by default
(25%): single-op nanosecond timings on shared runners are noisier than
the aggregated fleet number.

Always exits 0: shared CI runners make absolute numbers too noisy to
fail the build on — the annotations are a trend signal for reviewers, not
a gate. Stdlib only.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["scenario"], r["conns"]): r for r in data.get("rows", [])}


def load_queue_rows(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["op"], r["repr"], r["entries"]): r for r in data.get("rows", [])}


def check_queue(current_path, baseline_path, threshold):
    """Warns on (op, repr, entries) rows whose ns_per_op grew past the
    threshold. Returns the number of regressed rows (informational only)."""
    try:
        baseline = load_queue_rows(baseline_path)
        current = load_queue_rows(current_path)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"::warning::queue perf gate skipped: {err}")
        return 0

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue
        base = base_row["ns_per_op"]
        cur = cur_row["ns_per_op"]
        if base <= 0:
            continue
        delta = (cur - base) / base  # positive = slower
        op, repr_, entries = key
        tag = f"{op}/{repr_}/{entries}"
        print(f"{tag}: {cur:.2f} ns/op vs baseline {base:.2f} ({delta:+.1%})")
        if delta > threshold and cur_row["repr"] == "packet_queue":
            # Only the flat ring is ours to regress; the deque columns are
            # the reference implementation and drift with the toolchain.
            regressions.append((tag, base, cur, delta))

    for tag, base, cur, delta in regressions:
        print(
            f"::warning file=bench/baselines/BENCH_queue.json::"
            f"queue-layer regression: {tag} at {cur:.2f} ns/op, "
            f"{delta:.1%} above the committed baseline ({base:.2f} ns/op). "
            f"If intentional, refresh the baseline with "
            f"bench_queue --out bench/baselines/BENCH_queue.json."
        )
    if not regressions:
        print("queue perf gate: all rows within threshold")
    return len(regressions)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_fleet.json")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_fleet.json",
        help="committed reference JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression that triggers a warning (0.10 = 10%%)",
    )
    parser.add_argument(
        "--queue",
        help="freshly produced BENCH_queue.json (optional second gate)",
    )
    parser.add_argument(
        "--queue-baseline",
        default="bench/baselines/BENCH_queue.json",
        help="committed queue-bench reference JSON",
    )
    parser.add_argument(
        "--queue-threshold",
        type=float,
        default=0.25,
        help="ns_per_op growth that triggers a queue warning (0.25 = 25%%)",
    )
    args = parser.parse_args()

    if args.queue:
        check_queue(args.queue, args.queue_baseline, args.queue_threshold)

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"::warning::fleet perf gate skipped: {err}")
        return 0

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue  # the smoke sweep may run a subset of the baseline
        base = base_row["events_per_sec"]
        cur = cur_row["events_per_sec"]
        if base <= 0:
            continue
        delta = (cur - base) / base
        scenario, conns = key
        tag = f"{scenario}/{conns}"
        print(
            f"{tag}: {cur:,.0f} ev/s vs baseline {base:,.0f} "
            f"({delta:+.1%})"
        )
        if delta < -args.threshold:
            regressions.append((tag, base, cur, delta))

    for tag, base, cur, delta in regressions:
        headline = " (headline row)" if tag == "fleet/1024" else ""
        print(
            f"::warning file=bench/baselines/BENCH_fleet.json::"
            f"fleet throughput regression{headline}: {tag} at {cur:,.0f} "
            f"ev/s, {-delta:.1%} below the committed baseline "
            f"({base:,.0f} ev/s). If intentional, refresh the baseline "
            f"with bench_fleet --conns 64,256,1024 --horizon-ms 500."
        )

    if not regressions:
        print("fleet perf gate: all rows within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
