#!/usr/bin/env python3
"""Warn-only fleet-throughput perf gate.

Diffs a fresh BENCH_fleet.json against the committed baseline
(bench/baselines/BENCH_fleet.json) and emits GitHub Actions ::warning::
annotations for any (scenario, conns) row whose events/sec regressed more
than the threshold (default 10%). The fleet/1024 row is the headline
number from the queue-layer refactor (EXPERIMENTS.md), so its warning is
called out explicitly.

Always exits 0: shared CI runners make absolute events/sec too noisy to
fail the build on — the annotations are a trend signal for reviewers, not
a gate. Stdlib only.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["scenario"], r["conns"]): r for r in data.get("rows", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_fleet.json")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_fleet.json",
        help="committed reference JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression that triggers a warning (0.10 = 10%%)",
    )
    args = parser.parse_args()

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"::warning::fleet perf gate skipped: {err}")
        return 0

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue  # the smoke sweep may run a subset of the baseline
        base = base_row["events_per_sec"]
        cur = cur_row["events_per_sec"]
        if base <= 0:
            continue
        delta = (cur - base) / base
        scenario, conns = key
        tag = f"{scenario}/{conns}"
        print(
            f"{tag}: {cur:,.0f} ev/s vs baseline {base:,.0f} "
            f"({delta:+.1%})"
        )
        if delta < -args.threshold:
            regressions.append((tag, base, cur, delta))

    for tag, base, cur, delta in regressions:
        headline = " (headline row)" if tag == "fleet/1024" else ""
        print(
            f"::warning file=bench/baselines/BENCH_fleet.json::"
            f"fleet throughput regression{headline}: {tag} at {cur:,.0f} "
            f"ev/s, {-delta:.1%} below the committed baseline "
            f"({base:,.0f} ev/s). If intentional, refresh the baseline "
            f"with bench_fleet --conns 64,256,1024 --horizon-ms 500."
        )

    if not regressions:
        print("fleet perf gate: all rows within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
