// Quickstart: write your own MPTCP scheduler in five minutes.
//
// This example walks through the whole ProgMP workflow:
//   1. define a scheduler in the specification language,
//   2. load it (compile + verify) through the application API,
//   3. attach it to an MPTCP connection with two subflows,
//   4. send data and watch where the scheduler put it.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "api/progmp_api.hpp"
#include "apps/scenarios.hpp"
#include "mptcp/connection.hpp"

int main() {
  using namespace progmp;

  // 1. A scheduler specification. This one prefers the subflow with the
  //    lowest RTT *variance* — steadier is better than faster, say, for a
  //    jitter-sensitive app. Try editing it: the compiler will tell you
  //    precisely what it dislikes (line:column).
  const char* my_scheduler = R"(
    /* steady-path scheduler: lowest RTT variance wins */
    IF (!Q.EMPTY) {
      VAR sbf = SUBFLOWS.FILTER(s => !s.LOSSY AND !s.TSQ_THROTTLED
                AND s.CWND > s.QUEUED + s.SKBS_IN_FLIGHT)
                .MIN(s => s.RTT_VAR);
      IF (sbf != NULL) {
        sbf.PUSH(Q.POP());
      }
    }
  )";

  // 2. Load it. Compilation goes spec -> AST -> IR -> eBPF bytecode, then
  //    through the verifier; errors come back as readable diagnostics.
  api::ProgmpApi api;
  std::string error;
  if (!api.load_scheduler(my_scheduler, "steady_path", &error)) {
    std::fprintf(stderr, "scheduler rejected:\n%s\n", error.c_str());
    return 1;
  }
  std::printf("scheduler 'steady_path' loaded (eBPF backend)\n");

  // 3. A simulated mobile connection: WiFi (10 ms RTT) + LTE (40 ms RTT).
  sim::Simulator sim;
  mptcp::MptcpConnection conn(sim, apps::mobile_config(false), Rng(1));
  api.set_scheduler(conn, "steady_path");

  // 4. Send 2 MB and run the simulation.
  api.send(conn, 2 * 1024 * 1024);
  sim.run_until(seconds(30));

  std::printf("\ndelivered %lld of %lld bytes\n",
              static_cast<long long>(conn.delivered_bytes()),
              static_cast<long long>(conn.written_bytes()));
  std::printf("\n%s\n", api.proc_stats(conn).c_str());

  // Bonus: look at the bytecode your spec compiled to.
  if (auto program = api.find("steady_path")) {
    std::printf("compiled to %zu eBPF instructions; first five:\n",
                program->generic_code().size());
    const std::string disasm = program->disassembly();
    std::size_t pos = 0;
    for (int i = 0; i < 5 && pos != std::string::npos; ++i) {
      const std::size_t next = disasm.find('\n', pos);
      std::printf("  %s\n", disasm.substr(pos, next - pos).c_str());
      pos = next == std::string::npos ? next : next + 1;
    }
  }
  return 0;
}
