// A key-value store client over MPTCP (§3.2's motivating API example).
//
// "Consider a database where small requests may significantly benefit from
//  redundancy while introducing a limited overhead. In contrast, heavy
//  responses can be transmitted throughput-optimized on the same
//  connection."
//
// Two connections model the two directions: the request path uses the
// redundancy-on-idle scheduler for tail-latency; the response path carries
// bulk results with the default scheduler. Both run over the same lossy
// two-path network.
#include <cstdio>

#include "api/progmp_api.hpp"
#include "apps/scenarios.hpp"
#include "apps/workloads.hpp"
#include "mptcp/connection.hpp"

int main() {
  using namespace progmp;
  sim::Simulator sim;

  api::ProgmpApi api;
  api.load_builtin("redundant_if_no_q");
  api.load_builtin("minrtt");

  // Request direction: thin, latency-critical (keys are a packet or two).
  mptcp::MptcpConnection requests(sim, apps::lossy_config(0.02, 2, 100),
                                  Rng(11));
  api.set_scheduler(requests, "redundant_if_no_q");

  // Response direction: heavy, throughput-oriented.
  mptcp::MptcpConnection responses(sim, apps::lossy_config(0.02, 2, 100),
                                   Rng(12));
  api.set_scheduler(responses, "minrtt");

  // 200 GET requests of ~600 B, measuring request delivery latency.
  apps::FlowRunner::Options req_opts;
  req_opts.flow_bytes = 600;
  req_opts.flow_count = 200;
  req_opts.gap = milliseconds(25);
  apps::FlowRunner reqs(sim, requests, req_opts);
  reqs.start();

  // Meanwhile the server streams result sets back.
  apps::BulkSource::Options resp_opts;
  resp_opts.total_bytes = 24 * 1024 * 1024;
  apps::BulkSource resps(sim, responses, resp_opts);
  resps.start();

  sim.run_until(seconds(60));

  std::printf("requests:  %d/%d delivered; latency mean %.1f ms, p99 %.1f ms "
              "(max %.1f)\n",
              reqs.completed(), req_opts.flow_count, reqs.fct_ms().mean(),
              reqs.fct_ms().percentile(99), reqs.fct_ms().max());
  const double redundancy =
      static_cast<double>(requests.wire_bytes_sent()) /
      static_cast<double>(requests.written_bytes());
  std::printf("           redundancy overhead %.2fx wire bytes\n", redundancy);
  std::printf("responses: %lld of %lld bytes delivered (%.1f MB/s)\n",
              static_cast<long long>(responses.delivered_bytes()),
              static_cast<long long>(responses.written_bytes()),
              static_cast<double>(responses.delivered_bytes()) /
                  sim.now().sec() / 1e6);
  std::printf("\nSame network, same loss — per-connection scheduler choice "
              "gives each traffic\nclass its own policy (§3.2).\n");
  return 0;
}
