// Interactive streaming with the TAP scheduler (§5.4, Fig 13).
//
// An interactive video stream switches bitrate mid-session (1 MB/s, then
// 4 MB/s). The application keeps the scheduler informed of its target
// bitrate through register R1; TAP exhausts the preferred WiFi subflow and
// tops up from the metered LTE subflow only when — and only as much as —
// needed.
//
// Usage: streaming_tap [target_phase2_bytes_per_sec]
#include <cstdio>
#include <cstdlib>

#include "api/progmp_api.hpp"
#include "apps/scenarios.hpp"
#include "apps/workloads.hpp"
#include "mptcp/connection.hpp"

int main(int argc, char** argv) {
  using namespace progmp;

  std::int64_t phase2_rate = 4'000'000;
  if (argc > 1) phase2_rate = std::atoll(argv[1]);

  sim::Simulator sim;
  mptcp::MptcpConnection conn(sim, apps::mobile_config(false), Rng(7));

  api::ProgmpApi api;
  std::string error;
  if (!api.load_builtin("tap", &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  api.set_scheduler(conn, "tap");

  apps::CbrSource::Options opts;
  opts.schedule = {{TimeNs{0}, 1'000'000}, {seconds(6), phase2_rate}};
  opts.duration = seconds(12);
  opts.target_register = 1;  // CbrSource keeps R1 = current target
  apps::CbrSource source(sim, conn, opts);
  source.start();

  // Mid-stream WiFi fluctuation, as in the wild.
  sim.schedule_at(seconds(8),
                  [&] { conn.path(0).forward.set_rate_bps(9'000'000); });
  sim.schedule_at(seconds(10),
                  [&] { conn.path(0).forward.set_rate_bps(16'000'000); });

  sim.run_until(seconds(13));

  std::printf("%s\n",
              source.delivered_series()
                  .ascii_plot("delivered application rate (bytes/sec)", 72, 10)
                  .c_str());

  const auto wifi = conn.subflow(0).stats().bytes_sent;
  const auto lte = conn.subflow(1).stats().bytes_sent;
  std::printf("WiFi carried %8lld bytes\n", static_cast<long long>(wifi));
  std::printf("LTE  carried %8lld bytes (%4.1f%% — the leftover share)\n",
              static_cast<long long>(lte),
              100.0 * static_cast<double>(lte) /
                  static_cast<double>(wifi + lte));
  std::printf(
      "\nphase 1 delivered %.2f MB/s (target 1.00), phase 2 %.2f MB/s "
      "(target %.2f)\n",
      source.delivered_series().mean_between(seconds(2), seconds(6)) / 1e6,
      source.delivered_series().mean_between(seconds(8), seconds(12)) / 1e6,
      static_cast<double>(phase2_rate) / 1e6);
  return 0;
}
