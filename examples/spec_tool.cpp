// progmp-spec: the scheduler developer's command-line tool.
//
//   spec_tool list                 list the built-in schedulers
//   spec_tool show <name>          print a built-in specification
//   spec_tool check <file|name>    compile + verify, print diagnostics
//   spec_tool ir <file|name>       dump the optimized IR
//   spec_tool asm <file|name>      dump the eBPF disassembly
//
// The paper ships a Python toolchain around its kernel runtime; this is the
// equivalent for this repository — handy when iterating on a new scheduler
// before wiring it into an application.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/program.hpp"
#include "sched/specs.hpp"

namespace {

using namespace progmp;

std::string load_source(const std::string& arg, std::string* name) {
  if (auto spec = sched::specs::find_spec(arg)) {
    *name = arg;
    return std::string(spec->source);
  }
  std::ifstream in(arg);
  if (!in) return {};
  *name = arg;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: spec_tool list | show <name> | check <file|name> | "
               "ir <file|name> | asm <file|name>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "list") {
    for (const auto& spec : sched::specs::all_specs()) {
      std::printf("%-24s %s\n", std::string(spec.name).c_str(),
                  std::string(spec.summary).c_str());
    }
    return 0;
  }
  if (argc < 3) return usage();
  const std::string target = argv[2];

  if (command == "show") {
    const auto spec = sched::specs::find_spec(target);
    if (!spec) {
      std::fprintf(stderr, "unknown scheduler '%s'\n", target.c_str());
      return 1;
    }
    std::printf("%s\n", std::string(spec->source).c_str());
    return 0;
  }

  std::string name;
  const std::string source = load_source(target, &name);
  if (source.empty()) {
    std::fprintf(stderr, "cannot read '%s' (not a file or built-in)\n",
                 target.c_str());
    return 1;
  }

  DiagSink diags;
  rt::ProgmpProgram::LoadOptions options;
  options.backend = rt::Backend::kEbpf;
  auto program = rt::ProgmpProgram::load(source, name, options, diags);
  if (program == nullptr) {
    std::fprintf(stderr, "%s", diags.str().c_str());
    return 1;
  }

  if (command == "check") {
    std::printf("%s: OK — %d spec lines, %zu IR instructions, %zu eBPF "
                "instructions, %zu resident bytes\n",
                name.c_str(), program->spec_lines(),
                program->ir().insts.size(), program->generic_code().size(),
                program->resident_bytes());
    return 0;
  }
  if (command == "ir") {
    std::printf("%s", program->ir().str().c_str());
    return 0;
  }
  if (command == "asm") {
    std::printf("%s", program->disassembly().c_str());
    return 0;
  }
  return usage();
}
