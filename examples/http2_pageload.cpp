// HTTP/2-aware page loading (§5.5, Fig 14).
//
// Loads the same mobile web page twice — once with the uninformed default
// scheduler, once with the HTTP/2-aware scheduler fed per-packet content
// classes by the MPTCP-aware server — and compares dependency resolution,
// initial page time and metered LTE usage.
#include <cstdio>

#include "api/progmp_api.hpp"
#include "apps/http2.hpp"
#include "apps/scenarios.hpp"
#include "mptcp/connection.hpp"

namespace {

struct Outcome {
  double dep_ms;
  double initial_ms;
  double full_ms;
  long long lte_bytes;
};

Outcome load_page(const std::string& scheduler, bool annotate) {
  using namespace progmp;
  sim::Simulator sim;
  auto cfg = apps::mobile_config(false);
  // Strongly degraded WiFi: 170 ms RTT vs LTE's 40 ms — the heterogeneous
  // end of the paper's sweep, where tail head-packets sprayed onto the slow
  // path hurt the uninformed scheduler most.
  cfg.subflows[0].forward.delay = milliseconds(85);
  cfg.subflows[0].reverse.delay = milliseconds(85);
  mptcp::MptcpConnection conn(sim, cfg, Rng(3));

  api::ProgmpApi api;
  api.load_builtin(scheduler);
  api.set_scheduler(conn, scheduler);

  apps::PageConfig page_cfg;
  page_cfg.annotate_content = annotate;
  apps::PageLoad page(sim, conn, page_cfg);
  page.start();
  sim.run_until(seconds(60));

  return Outcome{
      static_cast<double>(page.dependency_retrieval_time().us()) / 1e3,
      static_cast<double>(page.initial_page_time().us()) / 1e3,
      static_cast<double>(page.full_load_time().us()) / 1e3,
      static_cast<long long>(conn.subflow(1).stats().bytes_sent)};
}

}  // namespace

int main() {
  std::printf("loading the page with the uninformed default scheduler...\n");
  const Outcome plain = load_page("minrtt", true);
  std::printf("loading the page with the HTTP/2-aware scheduler...\n\n");
  const Outcome aware = load_page("http2_aware", true);

  std::printf("%-28s %12s %12s\n", "", "minrtt", "http2_aware");
  std::printf("%-28s %9.1f ms %9.1f ms\n", "dependency info retrieved",
              plain.dep_ms, aware.dep_ms);
  std::printf("%-28s %9.1f ms %9.1f ms\n", "initial page rendered",
              plain.initial_ms, aware.initial_ms);
  std::printf("%-28s %9.1f ms %9.1f ms\n", "full page loaded", plain.full_ms,
              aware.full_ms);
  std::printf("%-28s %10lld B %10lld B\n", "metered LTE usage",
              plain.lte_bytes, aware.lte_bytes);
  std::printf(
      "\nThe aware scheduler resolves third-party dependencies sooner (the "
      "head avoids\nthe slow path) and keeps below-the-fold images off LTE "
      "entirely.\n");
  return 0;
}
